#include "steiner/oracle.hpp"

#include <vector>

#include "util/validate.hpp"

namespace oar::steiner {

void OracleConfig::validate() const {
  util::check_field(max_steiner >= 0, "OracleConfig", "max_steiner",
                    "be >= 0", max_steiner);
  util::check_field(max_evaluations >= 0, "OracleConfig", "max_evaluations",
                    "be >= 0 (0 = unlimited)", max_evaluations);
}

route::OarmstResult OracleRouter::route(const HananGrid& grid) {
  route::OarmstRouter router(grid);
  // One scratch for the whole exhaustive enumeration: the oracle issues up
  // to max_evaluations builds, so per-build maze allocation would dominate.
  route::RouterScratch& scratch = route::local_router_scratch();
  route::OarmstResult best = router.build(grid.pins(), {}, &scratch);
  last_evaluations_ = 1;
  last_exhaustive_ = true;

  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (!grid.is_blocked(v) && !grid.is_pin(v)) candidates.push_back(v);
  }
  const std::int32_t budget = std::min<std::int32_t>(
      config_.max_steiner,
      std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2));

  // Depth-first enumeration of subsets in lexicographic order (mirrors the
  // combinatorial MCTS's priority-ordered action space).
  std::vector<Vertex> chosen;
  auto enumerate = [&](auto&& self, std::size_t from, std::int32_t depth) -> bool {
    if (depth == 0) return true;
    for (std::size_t i = from; i < candidates.size(); ++i) {
      if (config_.max_evaluations > 0 &&
          last_evaluations_ >= config_.max_evaluations) {
        last_exhaustive_ = false;
        return false;
      }
      chosen.push_back(candidates[i]);
      route::OarmstResult result = router.build(grid.pins(), chosen, &scratch);
      ++last_evaluations_;
      if (result.connected && result.cost < best.cost - 1e-12) {
        best = std::move(result);
      }
      const bool keep_going = self(self, i + 1, depth - 1);
      chosen.pop_back();
      if (!keep_going) return false;
    }
    return true;
  };
  enumerate(enumerate, 0, budget);
  return best;
}

}  // namespace oar::steiner
