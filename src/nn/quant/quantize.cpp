#include "nn/quant/quantize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "nn/activations.hpp"
#include "obs/metrics.hpp"
#include "util/validate.hpp"

namespace oar::nn {

void InferConfig::validate() const {
  util::check_field(precision == Precision::kFp32 || precision == Precision::kInt8,
                    "InferConfig", "precision", "be fp32 or int8",
                    std::int32_t(precision));
  util::check_field(int8_min_agreement >= 0.0 && int8_min_agreement <= 1.0,
                    "InferConfig", "int8_min_agreement", "be in [0, 1]",
                    int8_min_agreement);
  util::check_field(int8_max_cost_ratio >= 1.0, "InferConfig",
                    "int8_max_cost_ratio", "be >= 1", int8_max_cost_ratio);
}

namespace quant {

// ---------------------------------------------------------------------------
// Metrics (next to the feature-cache metrics; same registry idiom).
// ---------------------------------------------------------------------------

namespace {

struct QuantObs {
  obs::Counter& int8_forwards;
  obs::Counter& fp32_forwards;
  obs::Counter& values;
  obs::Counter& clipped;
  obs::Counter& accum_hits;
  obs::Counter& accum_rebuilds;
  obs::Counter& gate_failures;
  obs::Counter& calibrations;
  obs::Gauge& dispatch_level;
};

QuantObs& quant_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static QuantObs o{
      reg.counter("oar_nn_quant_int8_forwards_total",
                  "U-Net forwards served by the int8 engine"),
      reg.counter("oar_nn_quant_fp32_forwards_total",
                  "U-Net forwards served by the fp32 fast path"),
      reg.counter("oar_nn_quant_values_total",
                  "Activations quantized to uint8 (requant + input)"),
      reg.counter("oar_nn_quant_clipped_total",
                  "Quantized activations clipped at 127 (exceeded the "
                  "calibration range)"),
      reg.counter("oar_nn_quant_accum_hits_total",
                  "Critic calls served by patching the cached first-layer "
                  "accumulator"),
      reg.counter("oar_nn_quant_accum_rebuilds_total",
                  "First-layer accumulator rebuilds (grid address or "
                  "revision changed)"),
      reg.counter("oar_nn_quant_gate_failures_total",
                  "int8 accuracy-gate failures (engine fell back to fp32)"),
      reg.counter("oar_nn_quant_calibrations_total",
                  "QuantizedUNet3d packs emitted by QuantCalibrator"),
      reg.gauge("oar_nn_quant_dispatch_level",
                "nn::simd dispatch level (0 scalar, 1 avx2, 2 avx2+vnni, "
                "3 neon)"),
  };
  // Recording the gauge forces the dispatcher to choose (and log) its
  // level once at first quant activity.  Must use `o`, not quant_obs():
  // re-entering while this static's init guard is held would self-deadlock.
  static const bool init = [] {
    o.dispatch_level.set(double(simd::dispatch_level()));
    return true;
  }();
  (void)init;
  return o;
}

/// scale = max/127 (dequant step), inv = 127/max (quant step).  A channel
/// that never activated calibrates to (0, 0): it quantizes to 0 and folds
/// to all-zero weights, so it contributes exactly nothing downstream.
void scale_from_max(float mx, float& scale, float& inv) {
  if (mx > 0.0f) {
    scale = mx / 127.0f;
    inv = 127.0f / mx;
  } else {
    scale = 0.0f;
    inv = 0.0f;
  }
}

// --- uint8 NHWC pool / upsample+concat (index mapping mirrors pool3d.cpp;
// max / nearest both commute with the monotone per-channel quantizer, so
// running them on quantized bytes is exact).

void pool_nhwc(const std::uint8_t* in, std::int32_t Cp, std::int32_t D0,
               std::int32_t D1, std::int32_t D2, std::uint8_t* out) {
  const std::int32_t O0 = (D0 + 1) / 2, O1 = (D1 + 1) / 2, O2 = (D2 + 1) / 2;
  std::uint8_t* ov = out;
  for (std::int32_t o0 = 0; o0 < O0; ++o0) {
    for (std::int32_t o1 = 0; o1 < O1; ++o1) {
      for (std::int32_t o2 = 0; o2 < O2; ++o2, ov += Cp) {
        std::memset(ov, 0, std::size_t(Cp));
        for (std::int32_t z0 = o0 * 2; z0 < std::min(D0, o0 * 2 + 2); ++z0) {
          for (std::int32_t z1 = o1 * 2; z1 < std::min(D1, o1 * 2 + 2); ++z1) {
            for (std::int32_t z2 = o2 * 2; z2 < std::min(D2, o2 * 2 + 2);
                 ++z2) {
              const std::uint8_t* iv =
                  in + ((std::int64_t(z0) * D1 + z1) * D2 + z2) * Cp;
              for (std::int32_t c = 0; c < Cp; ++c) {
                ov[c] = std::max(ov[c], iv[c]);
              }
            }
          }
        }
      }
    }
  }
}

/// Nearest-upsample `prev` (C1 real channels, stride ceil4(C1)) from
/// (s0,s1,s2) to (t0,t1,t2) into the first C1 channels of `cat`
/// (stride icp_cat), append the skip's C2 channels, zero the padding.
void upsample_concat_nhwc(const std::uint8_t* prev, std::int32_t C1,
                          std::int32_t s0, std::int32_t s1, std::int32_t s2,
                          const std::uint8_t* skip, std::int32_t C2,
                          std::int32_t t0, std::int32_t t1, std::int32_t t2,
                          std::uint8_t* cat) {
  const std::int32_t c1p = ceil4(C1), c2p = ceil4(C2);
  const std::int32_t icp_cat = ceil4(C1 + C2);
  const std::int32_t pad = icp_cat - C1 - C2;
  std::uint8_t* ov = cat;
  std::int64_t voxel = 0;
  for (std::int32_t o0 = 0; o0 < t0; ++o0) {
    const std::int32_t z0 =
        std::min(s0 - 1, std::int32_t(std::int64_t(o0) * s0 / t0));
    for (std::int32_t o1 = 0; o1 < t1; ++o1) {
      const std::int32_t z1 =
          std::min(s1 - 1, std::int32_t(std::int64_t(o1) * s1 / t1));
      for (std::int32_t o2 = 0; o2 < t2; ++o2, ov += icp_cat, ++voxel) {
        const std::int32_t z2 =
            std::min(s2 - 1, std::int32_t(std::int64_t(o2) * s2 / t2));
        const std::uint8_t* uv =
            prev + ((std::int64_t(z0) * s1 + z1) * s2 + z2) * c1p;
        std::memcpy(ov, uv, std::size_t(C1));
        std::memcpy(ov + C1, skip + voxel * c2p, std::size_t(C2));
        if (pad > 0) std::memset(ov + C1 + C2, 0, std::size_t(pad));
      }
    }
  }
}

}  // namespace

void note_fp32_forward() { quant_obs().fp32_forwards.inc(); }
void note_int8_gate_failure() { quant_obs().gate_failures.inc(); }
void note_accumulator_hit() { quant_obs().accum_hits.inc(); }
void note_accumulator_rebuild() { quant_obs().accum_rebuilds.inc(); }

// ---------------------------------------------------------------------------
// QuantizedUNet3d — the forward engine.
// ---------------------------------------------------------------------------

template <typename T>
T* QuantizedUNet3d::grown(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) {
    ++grow_events_;
    v.resize(n);
  }
  return v.data();
}

std::int32_t QuantizedUNet3d::first_layer_oc() const {
  return enc_[0].conv1.out_c;
}

bool QuantizedUNet3d::first_layer_has_proj() const { return enc_[0].has_proj; }

std::uint8_t QuantizedUNet3d::quantized_one(std::int32_t c) const {
  return quantize_u8(1.0f, in_inv_[std::size_t(c)]);
}

void QuantizedUNet3d::quantize_input(const float* features, std::int32_t H,
                                     std::int32_t V, std::int32_t M,
                                     std::uint8_t* q) {
  const std::int32_t C = cfg_.in_channels, Cp = input_icp();
  const std::int64_t S = std::int64_t(H) * V * M;
  std::uint64_t clip = 0;
  for (std::int64_t v = 0; v < S; ++v) {
    std::uint8_t* qv = q + v * Cp;
    for (std::int32_t c = 0; c < C; ++c) {
      const float r = features[std::int64_t(c) * S + v] * in_inv_[std::size_t(c)];
      if (r > 127.0f) {
        qv[c] = 127;
        ++clip;
      } else if (r <= 0.0f) {
        qv[c] = 0;
      } else {
        qv[c] = std::uint8_t(std::int32_t(std::rint(r)));
      }
    }
    for (std::int32_t c = C; c < Cp; ++c) qv[c] = 0;
  }
  auto& o = quant_obs();
  o.values.add(std::uint64_t(S) * std::uint64_t(C));
  if (clip > 0) o.clipped.add(clip);
}

void QuantizedUNet3d::first_layer_acc(const std::uint8_t* q, std::int32_t H,
                                      std::int32_t V, std::int32_t M,
                                      std::int32_t* acc1, std::int32_t* accp) {
  const QuantBlock& b = enc_[0];
  kernels_.conv3_nhwc(q, H, V, M, b.conv1.icp, b.conv1.w.data(), b.conv1.out_c,
                      acc1);
  if (b.has_proj) {
    assert(accp != nullptr);
    kernels_.conv1_nhwc(q, std::int64_t(H) * V * M, b.proj.icp, b.proj.w.data(),
                        b.proj.out_c, accp);
  }
}

void QuantizedUNet3d::requant_norm(const std::int32_t* acc,
                                   const QuantConv& conv, const QuantNorm& n,
                                   const float* skipf, std::int64_t S,
                                   const std::vector<float>& inv_out,
                                   std::uint8_t* out) {
  const std::int32_t OC = conv.out_c, OCp = ceil4(OC);
  double* sum = grown(sum_, std::size_t(OC));
  double* sq = grown(sumsq_, std::size_t(OC));
  std::fill(sum, sum + OC, 0.0);
  std::fill(sq, sq + OC, 0.0);

  // Pass 1: per-channel moments of the RAW accumulator (int32 converts to
  // double exactly).  The dequantized moments follow in closed form:
  // x = a*acc + b gives sum(x) = a*S1 + b*n and sum(x^2) = a^2*SS +
  // 2ab*S1 + b^2*n.  Channels go in tiles of 8 with fixed-size local
  // accumulators: the compiler keeps them in registers across the spatial
  // scan (the heap-pointer form pays a store-forward round trip per value
  // because `sum` could alias `acc`).  Each channel still accumulates
  // sequentially in v order, so the result is bit-identical to the naive
  // loop on every dispatch level.
  std::int32_t c0 = 0;
  for (; c0 + 8 <= OC; c0 += 8) {
    double s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    double z[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    const std::int32_t* av = acc + c0;
    for (std::int64_t v = 0; v < S; ++v, av += OC) {
      for (std::int32_t j = 0; j < 8; ++j) {
        const double d = double(av[j]);
        s[j] += d;
        z[j] += d * d;
      }
    }
    for (std::int32_t j = 0; j < 8; ++j) {
      sum[c0 + j] = s[j];
      sq[c0 + j] = z[j];
    }
  }
  for (; c0 < OC; ++c0) {
    double s = 0.0, z = 0.0;
    const std::int32_t* av = acc + c0;
    for (std::int64_t v = 0; v < S; ++v, av += OC) {
      const double d = double(*av);
      s += d;
      z += d * d;
    }
    sum[c0] = s;
    sq[c0] = z;
  }

  const std::int32_t cpg = OC / n.groups;
  // Per-channel fused coefficients: y = gamma*((x - mu)*inv) + beta with
  // x = a*acc + b folds to y = acc*A + B, A = gamma*inv*a,
  // B = gamma*inv*(b - mu) + beta.
  float* A_c = grown(mu_c_, std::size_t(OC));
  float* B_c = grown(inv_c_, std::size_t(OC));
  for (std::int32_t g = 0; g < n.groups; ++g) {
    double s = 0.0, ss = 0.0;
    for (std::int32_t c = g * cpg; c < (g + 1) * cpg; ++c) {
      const double a = double(conv.scale[std::size_t(c)]);
      const double b = double(conv.bias[std::size_t(c)]);
      s += a * sum[c] + b * double(S);
      ss += a * a * sq[c] + 2.0 * a * b * sum[c] + b * b * double(S);
    }
    const double cnt = double(cpg) * double(S);
    const double mu = s / cnt;
    const double var = std::max(0.0, ss / cnt - mu * mu);
    const float muf = float(mu);
    const float invf = float(1.0 / std::sqrt(var + double(n.eps)));
    for (std::int32_t c = g * cpg; c < (g + 1) * cpg; ++c) {
      const float gi = n.gamma[std::size_t(c)] * invf;
      A_c[c] = gi * conv.scale[std::size_t(c)];
      B_c[c] = gi * (conv.bias[std::size_t(c)] - muf) + n.beta[std::size_t(c)];
    }
  }

  // Pass 2: one fused affine + skip + ReLU + requantize per value.  Every
  // step stays branch-free in a form GCC's vectorizer accepts: max/min
  // instead of if-clamps, round-half-up via truncate(r + 0.5) (rintf and
  // the magic-constant trick both block vectorization), and the clip test
  // in the integer domain (a float compare feeding an integer reduction
  // does too).  The float min at kGuard bounds the int conversion away
  // from overflow without disturbing the t > 127 test.  __restrict-
  // qualified locals let the compiler vectorize across channels (the u8
  // output store would otherwise be assumed to alias the coefficient
  // tables, forcing per-value reloads).  This pass is portable scalar C++
  // compiled once and shared by every dispatch level, so the rounding
  // choice cannot break cross-level bit-exactness.
  const float kGuard = 1048576.0f;  // 2^20: >= 128 so clips stay clips
  std::uint64_t clip = 0;
  const std::int32_t* __restrict ap = acc;
  std::uint8_t* __restrict op = out;
  if (OCp == OC) {
    // Every real layer lands here (channel counts are multiples of 4, so
    // the NHWC row has no padding and output index == accumulator index).
    // The voxel loop flattens into spans of R whole voxels over coefficient
    // tables pre-tiled R times, giving the vectorizer one long contiguous
    // loop instead of S tiny OC-trip loops whose prologue/alias checks
    // dominate.  Spans start on voxel boundaries, so coefficient j always
    // faces channel j % OC.
    const std::int32_t R = (128 + OC - 1) / OC;
    const std::int64_t L = std::int64_t(OC) * R;
    float* __restrict Ar = grown(coef_rep_, std::size_t(3 * L));
    float* __restrict Br = Ar + L;
    float* __restrict Ir = Ar + 2 * L;
    for (std::int32_t r = 0; r < R; ++r) {
      std::memcpy(Ar + std::int64_t(r) * OC, A_c, std::size_t(OC) * 4);
      std::memcpy(Br + std::int64_t(r) * OC, B_c, std::size_t(OC) * 4);
      std::memcpy(Ir + std::int64_t(r) * OC, inv_out.data(),
                  std::size_t(OC) * 4);
    }
    const std::int64_t N = S * OC;
    if (skipf != nullptr) {
      const float* __restrict sk = skipf;
      for (std::int64_t i = 0; i < N; i += L) {
        const std::int64_t n = std::min(L, N - i);
        std::int32_t cl = 0;
        for (std::int64_t j = 0; j < n; ++j) {
          const float y =
              std::max(0.0f, float(ap[i + j]) * Ar[j] + Br[j] + sk[i + j]);
          const float r = std::min(y * Ir[j], kGuard);
          const std::int32_t t = std::int32_t(r + 0.5f);
          cl += std::int32_t(t > 127);
          op[i + j] = std::uint8_t(std::min(t, 127));
        }
        clip += std::uint64_t(cl);
      }
    } else {
      for (std::int64_t i = 0; i < N; i += L) {
        const std::int64_t n = std::min(L, N - i);
        std::int32_t cl = 0;
        for (std::int64_t j = 0; j < n; ++j) {
          const float y = std::max(0.0f, float(ap[i + j]) * Ar[j] + Br[j]);
          const float r = std::min(y * Ir[j], kGuard);
          const std::int32_t t = std::int32_t(r + 0.5f);
          cl += std::int32_t(t > 127);
          op[i + j] = std::uint8_t(std::min(t, 127));
        }
        clip += std::uint64_t(cl);
      }
    }
  } else {
    // Padded fallback (OC not a multiple of 4): per-voxel loops with an
    // explicit zeroed tail.  Same elementwise formula, same results.
    const float* __restrict Af = A_c;
    const float* __restrict Bf = B_c;
    const float* __restrict iv = inv_out.data();
    for (std::int64_t v = 0; v < S; ++v) {
      const std::int32_t* av = ap + v * OC;
      std::uint8_t* ov = op + v * OCp;
      std::int32_t cl = 0;
      for (std::int32_t c = 0; c < OC; ++c) {
        const float s = skipf != nullptr ? skipf[v * OC + c] : 0.0f;
        const float y = std::max(0.0f, float(av[c]) * Af[c] + Bf[c] + s);
        const float r = std::min(y * iv[c], kGuard);
        const std::int32_t t = std::int32_t(r + 0.5f);
        cl += std::int32_t(t > 127);
        ov[c] = std::uint8_t(std::min(t, 127));
      }
      for (std::int32_t c = OC; c < OCp; ++c) ov[c] = 0;
      clip += std::uint64_t(cl);
    }
  }
  auto& o = quant_obs();
  o.values.add(std::uint64_t(S) * std::uint64_t(OC));
  if (clip > 0) o.clipped.add(clip);
}

void QuantizedUNet3d::run_block(const QuantBlock& b, const std::uint8_t* in,
                                std::int32_t d0, std::int32_t d1,
                                std::int32_t d2, const std::int32_t* acc1_pre,
                                const std::int32_t* accp_pre,
                                std::uint8_t* out) {
  const std::int64_t S = std::int64_t(d0) * d1 * d2;
  const std::int32_t OC = b.conv1.out_c;

  const std::int32_t* acc1 = acc1_pre;
  if (acc1 == nullptr) {
    std::int32_t* a = grown(acc_a_, std::size_t(S) * std::size_t(OC));
    kernels_.conv3_nhwc(in, d0, d1, d2, b.conv1.icp, b.conv1.w.data(), OC, a);
    acc1 = a;
  }

  std::uint8_t* mid = grown(mid_, std::size_t(S) * std::size_t(ceil4(OC)));
  requant_norm(acc1, b.conv1, b.n1, nullptr, S, b.mid_inv, mid);

  std::int32_t* acc2 = grown(acc_b_, std::size_t(S) * std::size_t(OC));
  kernels_.conv3_nhwc(mid, d0, d1, d2, ceil4(OC), b.conv2.w.data(), OC, acc2);

  float* skipf = grown(skipf_, std::size_t(S) * std::size_t(OC));
  if (b.has_proj) {
    const std::int32_t* accp = accp_pre;
    if (accp == nullptr) {
      std::int32_t* a = grown(acc_p_, std::size_t(S) * std::size_t(OC));
      kernels_.conv1_nhwc(in, S, b.proj.icp, b.proj.w.data(), OC, a);
      accp = a;
    }
    for (std::int64_t v = 0; v < S; ++v) {
      for (std::int32_t c = 0; c < OC; ++c) {
        skipf[v * OC + c] = float(accp[v * OC + c]) * b.proj.scale[std::size_t(c)] +
                            b.proj.bias[std::size_t(c)];
      }
    }
  } else {
    // Identity skip: dequantize the block input (in_c == out_c here).
    const std::int32_t icp = b.conv1.icp;
    for (std::int64_t v = 0; v < S; ++v) {
      for (std::int32_t c = 0; c < OC; ++c) {
        skipf[v * OC + c] =
            float(in[v * icp + c]) * b.in_scale[std::size_t(c)];
      }
    }
  }
  requant_norm(acc2, b.conv2, b.n2, skipf, S, b.out_inv, out);
}

void QuantizedUNet3d::infer_from_first_layer(const std::uint8_t* q,
                                             const std::int32_t* acc1,
                                             const std::int32_t* accp,
                                             std::int32_t H, std::int32_t V,
                                             std::int32_t M,
                                             std::vector<double>& out) {
  const std::int32_t depth = std::int32_t(enc_.size());
  assert(depth <= 12);
  std::int32_t dims[13][3];
  dims[0][0] = H;
  dims[0][1] = V;
  dims[0][2] = M;
  for (std::int32_t l = 1; l <= depth; ++l) {
    for (int a = 0; a < 3; ++a) dims[l][a] = (dims[l - 1][a] + 1) / 2;
  }

  const std::uint8_t* cur = q;
  for (std::int32_t l = 0; l < depth; ++l) {
    const std::int64_t S = std::int64_t(dims[l][0]) * dims[l][1] * dims[l][2];
    const std::int32_t OC = enc_[std::size_t(l)].conv2.out_c;
    std::uint8_t* so = grown(skip_[std::size_t(l)],
                             std::size_t(S) * std::size_t(ceil4(OC)));
    run_block(enc_[std::size_t(l)], cur, dims[l][0], dims[l][1], dims[l][2],
              l == 0 ? acc1 : nullptr, l == 0 ? accp : nullptr, so);
    const std::int64_t Sn =
        std::int64_t(dims[l + 1][0]) * dims[l + 1][1] * dims[l + 1][2];
    std::uint8_t* dn = grown(down_[std::size_t(l)],
                             std::size_t(Sn) * std::size_t(ceil4(OC)));
    pool_nhwc(so, ceil4(OC), dims[l][0], dims[l][1], dims[l][2], dn);
    cur = dn;
  }

  {
    const std::int64_t S =
        std::int64_t(dims[depth][0]) * dims[depth][1] * dims[depth][2];
    const std::int32_t OC = bottleneck_.conv2.out_c;
    std::uint8_t* bo = grown(bott_, std::size_t(S) * std::size_t(ceil4(OC)));
    run_block(bottleneck_, cur, dims[depth][0], dims[depth][1], dims[depth][2],
              nullptr, nullptr, bo);
    cur = bo;
  }

  std::int32_t prev_c = bottleneck_.conv2.out_c;
  const std::int32_t* prev_dims = dims[depth];
  for (std::int32_t i = 0; i < depth; ++i) {
    const std::int32_t lvl = depth - 1 - i;
    const QuantBlock& dblk = dec_[std::size_t(i)];
    const std::int32_t C2 = enc_[std::size_t(lvl)].conv2.out_c;
    const std::int32_t* t = dims[lvl];
    const std::int64_t St = std::int64_t(t[0]) * t[1] * t[2];
    const std::int32_t icp_cat = ceil4(prev_c + C2);
    assert(icp_cat == dblk.conv1.icp);
    std::uint8_t* catb =
        grown(cat_, std::size_t(St) * std::size_t(icp_cat));
    upsample_concat_nhwc(cur, prev_c, prev_dims[0], prev_dims[1], prev_dims[2],
                         skip_[std::size_t(lvl)].data(), C2, t[0], t[1], t[2],
                         catb);
    const std::int32_t OC = dblk.conv2.out_c;
    std::uint8_t* ob = grown(i % 2 != 0 ? pong_ : ping_,
                             std::size_t(St) * std::size_t(ceil4(OC)));
    run_block(dblk, catb, t[0], t[1], t[2], nullptr, nullptr, ob);
    cur = ob;
    prev_c = OC;
    prev_dims = t;
  }

  // 1x1 head -> float logits -> sigmoid.
  assert(head_.out_c == 1);
  const std::int64_t S = std::int64_t(H) * V * M;
  std::int32_t* ha = grown(acc_a_, std::size_t(S));
  kernels_.conv1_nhwc(cur, S, head_.icp, head_.w.data(), 1, ha);
  float* lg = grown(logits_, std::size_t(S));
  for (std::int64_t v = 0; v < S; ++v) {
    lg[v] = float(ha[v]) * head_.scale[0] + head_.bias[0];
  }
  out.resize(std::size_t(S));
  sigmoid_into(lg, S, out.data());
  quant_obs().int8_forwards.inc();
}

void QuantizedUNet3d::infer_fsp_from_features(const float* features,
                                              std::int32_t H, std::int32_t V,
                                              std::int32_t M,
                                              std::vector<double>& out) {
  const std::int64_t S = std::int64_t(H) * V * M;
  std::uint8_t* q =
      grown(qin_, std::size_t(S) * std::size_t(input_icp()));
  quantize_input(features, H, V, M, q);
  infer_from_first_layer(q, nullptr, nullptr, H, V, M, out);
}

// ---------------------------------------------------------------------------
// QuantCalibrator — fp32 replay + per-channel maxima + weight folding.
// ---------------------------------------------------------------------------

namespace {

void update_channel_max(const float* x, std::int32_t C, std::int64_t S,
                        std::vector<float>& mx) {
  for (std::int32_t c = 0; c < C; ++c) {
    float m = mx[std::size_t(c)];
    const float* xc = x + std::int64_t(c) * S;
    for (std::int64_t v = 0; v < S; ++v) m = std::max(m, xc[v]);
    mx[std::size_t(c)] = m;
  }
}

/// Channel-major ceil-mode 2x max pool (mirrors MaxPool3d::infer_into).
void pool_cm(const float* in, std::int32_t C, std::int32_t D0, std::int32_t D1,
             std::int32_t D2, float* out) {
  const std::int32_t O0 = (D0 + 1) / 2, O1 = (D1 + 1) / 2, O2 = (D2 + 1) / 2;
  std::int64_t oi = 0;
  for (std::int32_t c = 0; c < C; ++c) {
    const std::int64_t cbase = std::int64_t(c) * D0 * D1 * D2;
    for (std::int32_t o0 = 0; o0 < O0; ++o0) {
      for (std::int32_t o1 = 0; o1 < O1; ++o1) {
        for (std::int32_t o2 = 0; o2 < O2; ++o2, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int32_t z0 = o0 * 2; z0 < std::min(D0, o0 * 2 + 2); ++z0) {
            for (std::int32_t z1 = o1 * 2; z1 < std::min(D1, o1 * 2 + 2);
                 ++z1) {
              for (std::int32_t z2 = o2 * 2; z2 < std::min(D2, o2 * 2 + 2);
                   ++z2) {
                best = std::max(
                    best, in[cbase + (std::int64_t(z0) * D1 + z1) * D2 + z2]);
              }
            }
          }
          out[oi] = best;
        }
      }
    }
  }
}

/// Channel-major nearest upsample (mirrors UpsampleNearest3d::infer_into).
void upsample_cm(const float* in, std::int32_t C, std::int32_t D0,
                 std::int32_t D1, std::int32_t D2, std::int32_t t0,
                 std::int32_t t1, std::int32_t t2, float* out) {
  std::int64_t oi = 0;
  for (std::int32_t c = 0; c < C; ++c) {
    const std::int64_t cbase = std::int64_t(c) * D0 * D1 * D2;
    for (std::int32_t o0 = 0; o0 < t0; ++o0) {
      const std::int32_t z0 =
          std::min(D0 - 1, std::int32_t(std::int64_t(o0) * D0 / t0));
      for (std::int32_t o1 = 0; o1 < t1; ++o1) {
        const std::int32_t z1 =
            std::min(D1 - 1, std::int32_t(std::int64_t(o1) * D1 / t1));
        for (std::int32_t o2 = 0; o2 < t2; ++o2, ++oi) {
          const std::int32_t z2 =
              std::min(D2 - 1, std::int32_t(std::int64_t(o2) * D2 / t2));
          out[oi] = in[cbase + (std::int64_t(z0) * D1 + z1) * D2 + z2];
        }
      }
    }
  }
}

QuantNorm pack_norm(const GroupNorm& gn) {
  QuantNorm n;
  const std::int32_t C = gn.num_channels();
  n.gamma.assign(gn.gamma().value.data(), gn.gamma().value.data() + C);
  n.beta.assign(gn.beta().value.data(), gn.beta().value.data() + C);
  n.groups = gn.num_groups();
  n.eps = gn.eps();
  return n;
}

/// Fold per-input-channel activation scales into the weights, then quantize
/// each output channel symmetrically to int8 in the simd.hpp pack layout.
QuantConv pack_conv(const Conv3d& conv, const std::vector<float>& in_scales) {
  QuantConv qc;
  qc.in_c = conv.in_channels();
  qc.out_c = conv.out_channels();
  qc.kernel = conv.kernel();
  qc.icp = ceil4(qc.in_c);
  assert(std::int32_t(in_scales.size()) == qc.in_c);
  const std::int32_t IC = qc.in_c, OC = qc.out_c, K = qc.kernel;
  const std::int32_t taps = K * K * K, G = qc.icp / 4;
  const float* w = conv.weight().value.data();  // (OC, IC, K, K, K)
  const float* b = conv.bias().value.data();
  qc.scale.resize(std::size_t(OC));
  qc.bias.assign(b, b + OC);
  qc.w.assign(std::size_t(taps) * G * OC * 4, 0);
  for (std::int32_t oc = 0; oc < OC; ++oc) {
    float mx = 0.0f;
    for (std::int32_t ic = 0; ic < IC; ++ic) {
      const float a = in_scales[std::size_t(ic)];
      const float* wk = w + (std::int64_t(oc) * IC + ic) * taps;
      for (std::int32_t t = 0; t < taps; ++t) {
        mx = std::max(mx, std::fabs(wk[t] * a));
      }
    }
    const float sw = mx > 0.0f ? mx / 127.0f : 1.0f;
    qc.scale[std::size_t(oc)] = sw;
    for (std::int32_t ic = 0; ic < IC; ++ic) {
      const float a = in_scales[std::size_t(ic)];
      const float* wk = w + (std::int64_t(oc) * IC + ic) * taps;
      for (std::int32_t t = 0; t < taps; ++t) {
        const std::int32_t qv = std::int32_t(std::rint(wk[t] * a / sw));
        qc.w[((std::int64_t(t) * G + ic / 4) * OC + oc) * 4 + ic % 4] =
            std::int8_t(std::clamp(qv, -127, 127));
      }
    }
  }
  return qc;
}

QuantBlock pack_block(const ResidualBlock3d& blk,
                      const std::vector<float>& mid_max,
                      const std::vector<float>& out_max,
                      const std::vector<float>& in_scales) {
  QuantBlock b;
  b.in_scale = in_scales;
  b.conv1 = pack_conv(blk.conv1(), in_scales);
  b.n1 = pack_norm(blk.norm1());
  const std::int32_t OC = blk.out_channels();
  std::vector<float> mid_scale(std::size_t(OC), 0.0f);
  b.mid_inv.resize(std::size_t(OC));
  for (std::int32_t c = 0; c < OC; ++c) {
    scale_from_max(mid_max[std::size_t(c)], mid_scale[std::size_t(c)],
                   b.mid_inv[std::size_t(c)]);
  }
  b.conv2 = pack_conv(blk.conv2(), mid_scale);
  b.n2 = pack_norm(blk.norm2());
  b.out_inv.resize(std::size_t(OC));
  b.out_scale.resize(std::size_t(OC));
  for (std::int32_t c = 0; c < OC; ++c) {
    scale_from_max(out_max[std::size_t(c)], b.out_scale[std::size_t(c)],
                   b.out_inv[std::size_t(c)]);
  }
  if (blk.projection() != nullptr) {
    b.proj = pack_conv(*blk.projection(), in_scales);
    b.has_proj = true;
  }
  return b;
}

}  // namespace

QuantCalibrator::QuantCalibrator(const UNet3d& net) : net_(net) {
  const std::int32_t depth = net_.depth();
  in_max_.assign(std::size_t(net_.config().in_channels), 0.0f);
  auto init_max = [](const ResidualBlock3d& b, BlockMax& m) {
    m.mid.assign(std::size_t(b.out_channels()), 0.0f);
    m.out.assign(std::size_t(b.out_channels()), 0.0f);
  };
  enc_max_.resize(std::size_t(depth));
  dec_max_.resize(std::size_t(depth));
  skip_.resize(std::size_t(depth));
  for (std::int32_t l = 0; l < depth; ++l) {
    init_max(net_.encoder(l), enc_max_[std::size_t(l)]);
    init_max(net_.decoder_block(l), dec_max_[std::size_t(l)]);
  }
  init_max(net_.bottleneck_block(), bot_max_);
}

QuantCalibrator::~QuantCalibrator() = default;

void QuantCalibrator::observe_block(const ResidualBlock3d& blk, BlockMax& m,
                                    const float* in, std::int32_t d0,
                                    std::int32_t d1, std::int32_t d2,
                                    std::vector<float>& out) {
  const std::int64_t S = std::int64_t(d0) * d1 * d2;
  const std::int32_t OC = blk.out_channels();
  t1_.resize(std::size_t(S) * std::size_t(OC));
  blk.conv1().infer_into(in, d0, d1, d2, scratch_, t1_.data());
  blk.norm1().infer_relu_inplace(t1_.data(), S);
  update_channel_max(t1_.data(), OC, S, m.mid);
  t2_.resize(std::size_t(S) * std::size_t(OC));
  blk.conv2().infer_into(t1_.data(), d0, d1, d2, scratch_, t2_.data());
  const float* skip = in;
  if (blk.projection() != nullptr) {
    proj_.resize(std::size_t(S) * std::size_t(OC));
    blk.projection()->infer_into(in, d0, d1, d2, scratch_, proj_.data());
    skip = proj_.data();
  }
  blk.norm2().infer_add_relu_inplace(t2_.data(), skip, S);
  update_channel_max(t2_.data(), OC, S, m.out);
  out.resize(std::size_t(S) * std::size_t(OC));
  std::copy(t2_.begin(), t2_.begin() + std::int64_t(out.size()), out.begin());
}

void QuantCalibrator::observe(const float* features, std::int32_t H,
                              std::int32_t V, std::int32_t M) {
  const std::int32_t depth = net_.depth();
  const std::int32_t C = net_.config().in_channels;
  assert(depth <= 12);
  std::int32_t dims[13][3];
  dims[0][0] = H;
  dims[0][1] = V;
  dims[0][2] = M;
  for (std::int32_t l = 1; l <= depth; ++l) {
    for (int a = 0; a < 3; ++a) dims[l][a] = (dims[l - 1][a] + 1) / 2;
  }
  update_channel_max(features, C, std::int64_t(H) * V * M, in_max_);

  const float* cur = features;
  for (std::int32_t l = 0; l < depth; ++l) {
    observe_block(net_.encoder(l), enc_max_[std::size_t(l)], cur, dims[l][0],
                  dims[l][1], dims[l][2], skip_[std::size_t(l)]);
    const std::int32_t OC = net_.encoder(l).out_channels();
    const std::int64_t Sn =
        std::int64_t(dims[l + 1][0]) * dims[l + 1][1] * dims[l + 1][2];
    cur_.resize(std::size_t(Sn) * std::size_t(OC));
    pool_cm(skip_[std::size_t(l)].data(), OC, dims[l][0], dims[l][1],
            dims[l][2], cur_.data());
    cur = cur_.data();
  }

  observe_block(net_.bottleneck_block(), bot_max_, cur, dims[depth][0],
                dims[depth][1], dims[depth][2], up_);
  const float* prev = up_.data();
  std::int32_t prev_c = net_.bottleneck_block().out_channels();
  const std::int32_t* prev_dims = dims[depth];

  for (std::int32_t i = 0; i < depth; ++i) {
    const std::int32_t lvl = depth - 1 - i;
    const std::int32_t C2 = net_.encoder(lvl).out_channels();
    const std::int32_t* t = dims[lvl];
    const std::int64_t St = std::int64_t(t[0]) * t[1] * t[2];
    cat_.resize(std::size_t(St) * std::size_t(prev_c + C2));
    upsample_cm(prev, prev_c, prev_dims[0], prev_dims[1], prev_dims[2], t[0],
                t[1], t[2], cat_.data());
    std::copy(skip_[std::size_t(lvl)].begin(),
              skip_[std::size_t(lvl)].begin() + St * C2,
              cat_.begin() + St * prev_c);
    observe_block(net_.decoder_block(i), dec_max_[std::size_t(i)], cat_.data(),
                  t[0], t[1], t[2], up_);
    prev = up_.data();
    prev_c = net_.decoder_block(i).out_channels();
    prev_dims = t;
  }
  ++samples_;
}

std::unique_ptr<QuantizedUNet3d> QuantCalibrator::finish() const {
  if (samples_ == 0) {
    throw std::logic_error(
        "QuantCalibrator::finish: no calibration samples observed");
  }
  std::unique_ptr<QuantizedUNet3d> p(new QuantizedUNet3d());
  p->cfg_ = net_.config();
  const std::int32_t depth = net_.depth();
  const std::int32_t C = p->cfg_.in_channels;
  p->in_scale_.resize(std::size_t(C));
  p->in_inv_.resize(std::size_t(C));
  for (std::int32_t c = 0; c < C; ++c) {
    scale_from_max(in_max_[std::size_t(c)], p->in_scale_[std::size_t(c)],
                   p->in_inv_[std::size_t(c)]);
  }

  std::vector<float> cur_scales = p->in_scale_;
  p->enc_.resize(std::size_t(depth));
  for (std::int32_t l = 0; l < depth; ++l) {
    p->enc_[std::size_t(l)] =
        pack_block(net_.encoder(l), enc_max_[std::size_t(l)].mid,
                   enc_max_[std::size_t(l)].out, cur_scales);
    cur_scales = p->enc_[std::size_t(l)].out_scale;
  }
  p->bottleneck_ = pack_block(net_.bottleneck_block(), bot_max_.mid,
                              bot_max_.out, cur_scales);
  cur_scales = p->bottleneck_.out_scale;
  p->dec_.resize(std::size_t(depth));
  for (std::int32_t i = 0; i < depth; ++i) {
    const std::int32_t lvl = depth - 1 - i;
    std::vector<float> cat_scales = cur_scales;  // [upsampled ; skip]
    const auto& skip_scales = p->enc_[std::size_t(lvl)].out_scale;
    cat_scales.insert(cat_scales.end(), skip_scales.begin(),
                      skip_scales.end());
    p->dec_[std::size_t(i)] =
        pack_block(net_.decoder_block(i), dec_max_[std::size_t(i)].mid,
                   dec_max_[std::size_t(i)].out, cat_scales);
    cur_scales = p->dec_[std::size_t(i)].out_scale;
  }
  p->head_ = pack_conv(net_.head_conv(), cur_scales);

  // Pin-flip delta columns: one pin write sets input channel 0 to 1.0, so
  // the conv1 accumulator at output voxel (pin + 1 - k) changes by
  // q_pin * w(tap, ic=0, oc).
  p->q_pin_ = quantize_u8(1.0f, p->in_inv_[0]);
  const QuantConv& c1 = p->enc_[0].conv1;
  const std::int32_t G = c1.icp / 4, OC0 = c1.out_c;
  p->pin_dcol_.assign(std::size_t(27) * std::size_t(OC0), 0);
  for (std::int32_t tap = 0; tap < 27; ++tap) {
    for (std::int32_t oc = 0; oc < OC0; ++oc) {
      p->pin_dcol_[std::size_t(tap) * OC0 + oc] =
          std::int32_t(p->q_pin_) *
          c1.w[std::size_t((std::int64_t(tap) * G + 0) * OC0 + oc) * 4 + 0];
    }
  }
  if (p->enc_[0].has_proj) {
    const QuantConv& pr = p->enc_[0].proj;
    p->pin_dcol_proj_.assign(std::size_t(pr.out_c), 0);
    for (std::int32_t oc = 0; oc < pr.out_c; ++oc) {
      p->pin_dcol_proj_[std::size_t(oc)] =
          std::int32_t(p->q_pin_) * pr.w[std::size_t(oc) * 4 + 0];
    }
  }

  p->level_ = simd::dispatch_level();
  p->kernels_ = simd::dispatch();
  p->skip_.resize(std::size_t(depth));
  p->down_.resize(std::size_t(depth));
  quant_obs().calibrations.inc();
  return p;
}

}  // namespace quant
}  // namespace oar::nn
