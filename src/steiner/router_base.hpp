#pragma once

// Common interface for every ML-OARSMT router in the repository — the
// algorithmic baselines and the RL router — so benchmarks can sweep a list
// of routers over a workload uniformly.

#include <memory>
#include <string>
#include <vector>

#include "route/oarmst.hpp"

namespace oar::steiner {

using hanan::HananGrid;
using hanan::Vertex;

class Router {
 public:
  virtual ~Router() = default;

  virtual std::string name() const = 0;

  /// Builds an obstacle-avoiding rectilinear Steiner tree over the grid's
  /// pins.  Implementations must return a tree whose validate() passes when
  /// the result is connected.
  virtual route::OarmstResult route(const HananGrid& grid) = 0;
};

/// Plain spanning tree with no Steiner points: Prim over the maze-distance
/// metric closure, attaching at terminals only, cost = sum of path costs.
/// This is the denominator of the paper's ST-to-MST ratio (Figs. 11-12).
/// +infinity when the pins cannot be fully connected.  `scratch` selects
/// the routing scratch pool (nullptr = this thread's).
double mst_cost(const HananGrid& grid, route::RouterScratch* scratch = nullptr);

}  // namespace oar::steiner
