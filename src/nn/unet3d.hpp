#pragma once

// 3D Residual U-Net (paper Fig. 4): the arbitrary-size, image-in-image-out
// backbone of the Steiner-point selector.
//
// Encoder: `depth` levels of ResidualBlock3d + 2x max pooling (ceil mode);
// bottleneck residual block; decoder mirrors the encoder with nearest
// upsampling *to the exact skip size* followed by channel concatenation and
// a residual block; a final 1x1x1 convolution maps to a single logit per
// vertex.  Because pooling uses ceil semantics and upsampling targets the
// recorded skip dimensions, any (H, V, M) input produces an (H, V, M)
// output — the paper's "any length, any width, any number of routing
// layers" property.
//
// The output is raw logits; callers apply Sigmoid (inference) or the
// numerically stable BCE-with-logits loss (training).

#include <memory>
#include <vector>

#include "nn/inference.hpp"
#include "nn/pool3d.hpp"
#include "nn/residual_block.hpp"

namespace oar::nn {

struct UNet3dConfig {
  std::int32_t in_channels = 7;
  std::int32_t base_channels = 8;  // channels at the top level; doubled per level
  std::int32_t depth = 2;          // number of pooling levels
  std::uint64_t seed = 0x5eed;
  /// Initial bias of the output head.  A negative value makes the fresh
  /// selector emit small probabilities (sigmoid(-3) ~ 0.047), which both
  /// matches the mostly-zero L_fsp labels and keeps the actor's eq.-(1)
  /// running product from vanishing before training has shaped fsp.
  float head_bias_init = -5.0f;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  friend bool operator==(const UNet3dConfig&, const UNet3dConfig&) = default;
};

class UNet3d : public Module {
 public:
  explicit UNet3d(UNet3dConfig config = {});

  /// (in_channels, H, V, M) -> logits (1, H, V, M).  In inference mode
  /// (set_training(false)) this rewinds the arena and runs infer(),
  /// copying the logits out; prefer infer() on the hot path.
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Single-sample inference fast path: the whole pass runs on the tiled
  /// kernels with every intermediate in this net's InferenceScratch arena
  /// and nothing retained for backward.  Returns the arena-owned logits
  /// (1, H, V, M), valid until the arena is rewound.  infer() never
  /// rewinds the arena itself, so callers may push the input tensor into
  /// the arena first (SteinerSelector does); callers own the rewind.
  const Tensor& infer(const Tensor& input);

  /// This net's arena (one per net — the per-worker threading contract of
  /// DESIGN.md §11 follows from per-worker selectors).
  InferenceScratch& inference_scratch() { return *scratch_; }
  /// (N, in_channels, H, V, M) -> logits (N, 1, H, V, M); all samples of a
  /// micro-batch must share one (H, V, M) shape.  Inference-only: threads
  /// the batch through each layer's batched kernel (GEMM convolutions).
  Tensor forward_batch(const Tensor& input) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;

  const UNet3dConfig& config() const { return config_; }

  // Read-only structure access for the int8 calibrator (nn/quant).
  std::int32_t depth() const { return std::int32_t(encoders_.size()); }
  const ResidualBlock3d& encoder(std::int32_t i) const { return *encoders_[i]; }
  const ResidualBlock3d& bottleneck_block() const { return *bottleneck_; }
  /// Deepest-first, matching the decode order.
  const ResidualBlock3d& decoder_block(std::int32_t i) const {
    return *decoders_[i];
  }
  const Conv3d& head_conv() const { return *head_; }

 private:
  UNet3dConfig config_;
  std::vector<std::unique_ptr<ResidualBlock3d>> encoders_;
  std::vector<MaxPool3d> pools_;
  std::unique_ptr<ResidualBlock3d> bottleneck_;
  std::vector<UpsampleNearest3d> upsamples_;                 // deepest first
  std::vector<std::unique_ptr<ResidualBlock3d>> decoders_;   // deepest first
  std::unique_ptr<Conv3d> head_;

  // Forward caches.
  std::vector<std::vector<std::int32_t>> skip_shapes_;
  std::vector<std::int32_t> skip_channels_;

  // Inference engine state: the arena (unique_ptr so the net stays
  // movable) and the reused skip-pointer list (capacity persists across
  // calls — no allocation once warm).
  std::unique_ptr<InferenceScratch> scratch_;
  std::vector<const Tensor*> infer_skips_;
};

}  // namespace oar::nn
