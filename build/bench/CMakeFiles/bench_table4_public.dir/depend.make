# Empty dependencies file for bench_table4_public.
# This may be replaced when dependencies are built.
