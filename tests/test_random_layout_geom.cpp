#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "steiner/lin08.hpp"

namespace oar::gen {
namespace {

TEST(RandomLayout, RespectsSpec) {
  util::Rng rng(1);
  RandomLayoutSpec spec;
  spec.width = 500;
  spec.height = 400;
  spec.layers = 3;
  spec.min_pins = 5;
  spec.max_pins = 7;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  for (int i = 0; i < 10; ++i) {
    const geom::Layout layout = random_layout(spec, rng);
    EXPECT_EQ(layout.width(), 500);
    EXPECT_EQ(layout.height(), 400);
    EXPECT_EQ(layout.num_layers(), 3);
    EXPECT_GE(layout.pins().size(), 5u);
    EXPECT_LE(layout.pins().size(), 7u);
    EXPECT_GE(layout.obstacles().size(), 2u);
    EXPECT_LE(layout.obstacles().size(), 4u);
    EXPECT_EQ(layout.validate(), "") << "trial " << i;
  }
}

TEST(RandomLayout, NoBuriedPins) {
  util::Rng rng(2);
  RandomLayoutSpec spec;
  spec.min_obstacles = 6;
  spec.max_obstacles = 10;
  spec.max_obstacle_frac = 0.5;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(random_layout(spec, rng).has_buried_pin());
  }
}

TEST(RandomLayout, ConvertsAndRoutesEndToEnd) {
  util::Rng rng(3);
  RandomLayoutSpec spec;
  spec.layers = 4;
  int routed = 0;
  for (int i = 0; i < 6; ++i) {
    const geom::Layout layout = random_layout(spec, rng);
    const hanan::HananGrid grid = hanan::HananGrid::from_layout(layout);
    ASSERT_EQ(grid.validate(), "");
    steiner::Lin08Router router;
    const auto result = router.route(grid);
    if (result.connected) {
      ++routed;
      EXPECT_EQ(result.tree.validate(grid.pins()), "");
    }
  }
  EXPECT_GE(routed, 5);  // multi-layer layouts are almost always routable
}

TEST(RandomLayout, DeterministicForSeed) {
  RandomLayoutSpec spec;
  util::Rng r1(9), r2(9);
  const geom::Layout a = random_layout(spec, r1);
  const geom::Layout b = random_layout(spec, r2);
  EXPECT_EQ(a.pins(), b.pins());
  EXPECT_EQ(a.obstacles(), b.obstacles());
  EXPECT_DOUBLE_EQ(a.via_cost(), b.via_cost());
}

}  // namespace
}  // namespace oar::gen
