file(REMOVE_RECURSE
  "liboar_core.a"
)
