# Empty dependencies file for oar_steiner.
# This may be replaced when dependencies are built.
