#include "nn/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace oar::nn {

namespace {

constexpr char kMagic[] = "OARNN1\n";
constexpr char kCheckpointMagic[] = "OARCK1\n";
constexpr std::int32_t kCheckpointVersion = 1;
// Reject absurd payload sizes before allocating (corrupt length field).
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 33;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return bool(in);
}

using util::fnv1a64;

/// One parameter as staged on load: nothing is committed to the module
/// until every record of the file has validated.
struct ParamRecord {
  std::string name;
  std::vector<std::int32_t> shape;
  std::vector<float> data;
};

void write_param_block(std::ostream& out, const std::vector<Parameter*>& params) {
  const auto count = std::int32_t(params.size());
  write_pod(out, count);
  for (const Parameter* p : params) {
    const auto name_len = std::int32_t(p->name.size());
    write_pod(out, name_len);
    out.write(p->name.data(), name_len);
    const auto rank = std::int32_t(p->value.dim());
    write_pod(out, rank);
    for (std::int32_t d = 0; d < rank; ++d) write_pod(out, p->value.shape(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              std::streamsize(p->value.numel() * std::int64_t(sizeof(float))));
  }
}

bool read_param_block(std::istream& in, std::vector<ParamRecord>& records) {
  std::int32_t count = 0;
  if (!read_pod(in, count) || count < 0) return false;
  records.resize(std::size_t(count));
  for (ParamRecord& rec : records) {
    std::int32_t name_len = 0;
    if (!read_pod(in, name_len) || name_len < 0 || name_len > 4096) return false;
    rec.name.assign(std::size_t(name_len), '\0');
    in.read(rec.name.data(), name_len);
    std::int32_t rank = 0;
    if (!read_pod(in, rank) || rank < 0 || rank > 8) return false;
    rec.shape.resize(std::size_t(rank));
    std::int64_t numel = 1;
    for (std::int32_t& dim : rec.shape) {
      if (!read_pod(in, dim) || dim <= 0 || dim > (1 << 24)) return false;
      numel *= dim;
      if (numel > (std::int64_t(1) << 31)) return false;
    }
    rec.data.resize(std::size_t(numel));
    in.read(reinterpret_cast<char*>(rec.data.data()),
            std::streamsize(numel * std::int64_t(sizeof(float))));
    if (!in) return false;
  }
  return true;
}

/// Validates staged records against the module's parameter list.
bool records_match_module(const std::vector<ParamRecord>& records,
                          const std::vector<Parameter*>& params,
                          const std::string& path) {
  if (records.size() != params.size()) {
    util::log_error("checkpoint parameter count mismatch in ", path);
    return false;
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].name != params[i]->name) {
      util::log_error("checkpoint name mismatch: expected ", params[i]->name,
                      " got ", records[i].name);
      return false;
    }
    if (records[i].shape != params[i]->value.shape()) {
      util::log_error("checkpoint shape mismatch for ", params[i]->name);
      return false;
    }
  }
  return true;
}

void commit_records(const std::vector<ParamRecord>& records,
                    const std::vector<Parameter*>& params) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::copy(records[i].data.begin(), records[i].data.end(),
              params[i]->value.data());
  }
}

}  // namespace

bool save_parameters(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic) - 1);
  write_param_block(out, module.parameters());
  return bool(out);
}

bool load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, sizeof(magic)) != std::string(kMagic, sizeof(magic))) {
    util::log_error("checkpoint magic mismatch in ", path);
    return false;
  }
  std::vector<ParamRecord> records;
  if (!read_param_block(in, records)) return false;
  const auto params = module.parameters();
  if (!records_match_module(records, params, path)) return false;
  commit_records(records, params);
  return true;
}

void copy_parameters(Module& dst, Module& src) {
  const auto dparams = dst.parameters();
  const auto sparams = src.parameters();
  assert(dparams.size() == sparams.size());
  for (std::size_t i = 0; i < dparams.size(); ++i) {
    assert(dparams[i]->value.shape() == sparams[i]->value.shape());
    dparams[i]->value = sparams[i]->value;
  }
}

bool save_training_checkpoint(const std::string& path, Module& module,
                              Adam& optimizer, const util::RngState& rng,
                              std::int32_t stage_index) {
  std::ostringstream payload(std::ios::binary);
  write_pod(payload, stage_index);
  for (int i = 0; i < 4; ++i) write_pod(payload, rng.s[i]);
  write_pod(payload, std::uint8_t(rng.have_spare_normal ? 1 : 0));
  write_pod(payload, rng.spare_normal);
  write_param_block(payload, module.parameters());
  write_pod(payload, optimizer.step_count());
  for (const Tensor& m : optimizer.moments1()) {
    payload.write(reinterpret_cast<const char*>(m.data()),
                  std::streamsize(m.numel() * std::int64_t(sizeof(float))));
  }
  for (const Tensor& v : optimizer.moments2()) {
    payload.write(reinterpret_cast<const char*>(v.data()),
                  std::streamsize(v.numel() * std::int64_t(sizeof(float))));
  }
  const std::string bytes = payload.str();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kCheckpointMagic, sizeof(kCheckpointMagic) - 1);
    write_pod(out, kCheckpointVersion);
    write_pod(out, std::uint64_t(bytes.size()));
    out.write(bytes.data(), std::streamsize(bytes.size()));
    write_pod(out, fnv1a64(bytes.data(), bytes.size()));
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    util::log_error("checkpoint rename failed: ", tmp, " -> ", path);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_training_checkpoint(const std::string& path, Module& module,
                              Adam& optimizer, util::RngState* rng,
                              std::int32_t* stage_index) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kCheckpointMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, sizeof(magic)) !=
                 std::string(kCheckpointMagic, sizeof(magic))) {
    util::log_error("training checkpoint magic mismatch in ", path);
    return false;
  }
  std::int32_t version = 0;
  if (!read_pod(in, version) || version != kCheckpointVersion) {
    util::log_error("unsupported training checkpoint version in ", path);
    return false;
  }
  std::uint64_t payload_size = 0;
  if (!read_pod(in, payload_size) || payload_size > kMaxPayloadBytes) {
    util::log_error("bad training checkpoint payload size in ", path);
    return false;
  }
  std::string bytes(std::size_t(payload_size), '\0');
  in.read(bytes.data(), std::streamsize(payload_size));
  std::uint64_t stored_sum = 0;
  if (!in || !read_pod(in, stored_sum) ||
      stored_sum != fnv1a64(bytes.data(), bytes.size())) {
    util::log_error("training checkpoint truncated or corrupt: ", path);
    return false;
  }

  std::istringstream payload(bytes, std::ios::binary);
  std::int32_t stage = 0;
  util::RngState rng_state;
  if (!read_pod(payload, stage)) return false;
  for (int i = 0; i < 4; ++i) {
    if (!read_pod(payload, rng_state.s[i])) return false;
  }
  std::uint8_t have_spare = 0;
  if (!read_pod(payload, have_spare) || have_spare > 1) return false;
  rng_state.have_spare_normal = have_spare != 0;
  if (!read_pod(payload, rng_state.spare_normal)) return false;

  std::vector<ParamRecord> records;
  if (!read_param_block(payload, records)) return false;
  const auto params = module.parameters();
  if (!records_match_module(records, params, path)) return false;

  std::int64_t step_count = 0;
  if (!read_pod(payload, step_count) || step_count < 0) return false;
  if (optimizer.params().size() != params.size() ||
      optimizer.moments1().size() != params.size()) {
    util::log_error("checkpoint optimizer arity mismatch in ", path);
    return false;
  }
  std::vector<std::vector<float>> moments1(params.size()), moments2(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    moments1[i].resize(records[i].data.size());
    payload.read(reinterpret_cast<char*>(moments1[i].data()),
                 std::streamsize(moments1[i].size() * sizeof(float)));
    if (!payload) return false;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    moments2[i].resize(records[i].data.size());
    payload.read(reinterpret_cast<char*>(moments2[i].data()),
                 std::streamsize(moments2[i].size() * sizeof(float)));
    if (!payload) return false;
  }
  // The payload must contain exactly what we consumed — trailing garbage
  // means the length field lies about the content.
  if (std::uint64_t(payload.tellg()) != payload_size) return false;

  commit_records(records, params);
  optimizer.set_step_count(step_count);
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::copy(moments1[i].begin(), moments1[i].end(),
              optimizer.moments1()[i].data());
    std::copy(moments2[i].begin(), moments2[i].end(),
              optimizer.moments2()[i].data());
  }
  if (rng) *rng = rng_state;
  if (stage_index) *stage_index = stage;
  return true;
}

}  // namespace oar::nn
