// Combinatorial-MCTS design ablations (DESIGN.md Sec. 6): sweep the knobs
// the implementation exposes and report search quality (best/initial cost
// over a fixed layout set) and search effort (nodes, seconds per sample).
//
//  * iterations per move (the paper's alpha),
//  * exploration prior mix (uniform floor over eq.-(1) priors),
//  * c_puct (eq. (2) scale),
//  * critic vs exact leaf values (the curriculum switch),
//  * terminal pruning rules on/off.

#include "bench_common.hpp"

namespace {

using namespace oar;

struct Row {
  const char* label;
  mcts::CombMctsConfig config;
};

void run_sweep(const char* title, const std::vector<Row>& rows,
               const std::vector<hanan::HananGrid>& grids,
               rl::SteinerSelector& selector) {
  std::printf("%s\n", title);
  std::printf("  %-26s | %10s | %8s | %10s\n", "config", "best/init", "nodes",
              "ms/sample");
  for (const Row& row : rows) {
    util::RunningStats ratio, nodes;
    util::Timer timer;
    for (const auto& grid : grids) {
      mcts::CombMcts search(selector, row.config);
      const auto result = search.run(grid);
      if (result.initial_cost > 0.0) {
        ratio.add(result.best_cost / result.initial_cost);
      }
      nodes.add(double(result.stats.nodes));
    }
    std::printf("  %-26s | %10.4f | %8.0f | %10.2f\n", row.label, ratio.mean(),
                nodes.mean(), timer.seconds() * 1e3 / double(grids.size()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace oar;

  rl::SelectorConfig sel_cfg = core::pretrained_selector_config();
  sel_cfg.unet.seed = 0xab1a;
  rl::SteinerSelector selector(sel_cfg);  // untrained: isolates search effects

  util::Rng rng(0xab1a7e);
  std::vector<hanan::HananGrid> grids;
  const int layouts = std::max(1, int(10 * bench::env_scale()));
  for (int i = 0; i < layouts; ++i) {
    const auto spec = rl::training_spec({8, 8, 2}, 0.10, 5, 5);
    grids.push_back(gen::random_grid(spec, rng));
  }
  std::printf("MCTS ablations on %d layouts (8x8x2, 5 pins, untrained selector)\n\n",
              layouts);

  auto base = [] {
    mcts::CombMctsConfig cfg;
    cfg.iterations_per_move = 128;
    cfg.use_critic = false;
    return cfg;
  };

  {
    std::vector<Row> rows;
    for (std::int32_t iters : {32, 128, 512}) {
      mcts::CombMctsConfig cfg = base();
      cfg.iterations_per_move = iters;
      rows.push_back({iters == 32 ? "alpha=32" : iters == 128 ? "alpha=128" : "alpha=512",
                      cfg});
    }
    run_sweep("iterations per executed move (alpha)", rows, grids, selector);
  }
  {
    std::vector<Row> rows;
    for (double mix : {0.0, 0.15, 0.5}) {
      mcts::CombMctsConfig cfg = base();
      cfg.prior_uniform_mix = mix;
      rows.push_back({mix == 0.0   ? "prior mix 0 (pure eq.1)"
                      : mix == 0.15 ? "prior mix 0.15 (default)"
                                    : "prior mix 0.5",
                      cfg});
    }
    run_sweep("uniform prior mixing", rows, grids, selector);
  }
  {
    std::vector<Row> rows;
    for (double c : {0.25, 1.0, 4.0}) {
      mcts::CombMctsConfig cfg = base();
      cfg.c_puct = c;
      rows.push_back({c == 0.25 ? "c_puct=0.25" : c == 1.0 ? "c_puct=1.0" : "c_puct=4.0",
                      cfg});
    }
    run_sweep("exploration constant (eq. 2)", rows, grids, selector);
  }
  {
    mcts::CombMctsConfig critic = base();
    critic.use_critic = true;
    mcts::CombMctsConfig no_prune = base();
    no_prune.stop_on_cost_increase = false;
    no_prune.flat_cost_patience = 1 << 20;
    run_sweep("leaf values & terminal rules",
              {{"exact leaf values", base()},
               {"critic leaf values", critic},
               {"terminal rules off", no_prune}},
              grids, selector);
  }

  std::printf("notes: best/init < 1 means the search found cost-reducing Steiner\n"
              "combinations; 'terminal rules off' explores deeper at higher cost\n"
              "(the paper's rules prune ineffective combinations, Sec. 3.4).\n");
  return 0;
}
