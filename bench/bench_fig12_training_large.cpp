// Fig. 12 reproduction: the Fig. 11 experiment at the larger fixed layout
// size (paper: 32x32x4; bench: 10x10x3), where the paper reports the
// combinatorial MCTS's lead over the AlphaGo-like trainer widening and the
// inference speedup of the one-shot selector growing (1.67x for 3-6 pins,
// 3.54x for 7-12 pins at full scale).

#include "bench_training_curves.hpp"

int main() {
  oar::bench::CurveConfig cfg;
  cfg.figure_name = "Fig. 12";
  cfg.h = 10;
  cfg.v = 10;
  cfg.m = 3;
  cfg.out_min_pins = 7;
  cfg.out_max_pins = 12;
  cfg.seconds_per_trainer = 36.0;
  cfg.layouts_per_stage = 4;
  oar::bench::run_training_curves(cfg);
  return 0;
}
