#pragma once

// SVG rendering of Hanan-grid layouts and routed trees.
//
// Produces one SVG per routing layer, laid out side by side: obstacles as
// gray cells, pins as black dots, Steiner points as orange dots, in-plane
// tree edges as colored segments, and vias as small squares on both layers
// they connect.  Used by the examples to make results inspectable.

#include <string>

#include "route/route_tree.hpp"

namespace oar::gen {

struct SvgOptions {
  double cell_size = 16.0;   // pixels per grid cell
  double margin = 12.0;      // outer margin in pixels
  double layer_gap = 24.0;   // horizontal gap between layer panels
  bool draw_grid_lines = true;
  std::string wire_color = "#1f77b4";
  std::string via_color = "#d62728";
  std::string steiner_color = "#ff7f0e";
};

/// Renders `grid` (and optionally a routed tree and its kept Steiner
/// points) into an SVG document string.
std::string render_svg(const hanan::HananGrid& grid,
                       const route::RouteTree* tree = nullptr,
                       const std::vector<hanan::Vertex>& steiner_points = {},
                       const SvgOptions& options = {});

/// Convenience: render and write to `path`.  Returns false on I/O failure.
bool save_svg(const std::string& path, const hanan::HananGrid& grid,
              const route::RouteTree* tree = nullptr,
              const std::vector<hanan::Vertex>& steiner_points = {},
              const SvgOptions& options = {});

}  // namespace oar::gen
