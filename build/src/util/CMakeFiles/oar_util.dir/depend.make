# Empty dependencies file for oar_util.
# This may be replaced when dependencies are built.
