# Empty compiler generated dependencies file for oar_rl_selector.
# This may be replaced when dependencies are built.
