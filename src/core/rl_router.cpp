#include "core/rl_router.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace oar::core {

RlRouter::RlRouter(std::shared_ptr<rl::SteinerSelector> selector,
                   RlRouterConfig config)
    : selector_(std::move(selector)), config_(config) {}

route::OarmstResult RlRouter::route(const HananGrid& grid) {
  util::Timer total;
  const std::int32_t budget =
      std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);

  util::Timer select;
  // One network inference produces all Steiner points (paper Fig. 2),
  // ordered by descending probability.
  const std::vector<Vertex> steiner = selector_->select_steiner_points(grid, budget);
  timing_.select_seconds = select.seconds();

  route::OarmstRouter router(grid);  // redundant-point removal on
  route::RouterScratch& scratch = route::local_router_scratch();
  route::OarmstResult result = router.build(grid.pins(), steiner, &scratch);

  if (config_.prefix_sweep) {
    // Probability-ordered prefixes: k = 0 is the plain construction, so the
    // swept result can never be worse than no Steiner points at all.
    for (std::size_t k = 0; k < steiner.size(); ++k) {
      const std::vector<Vertex> prefix(steiner.begin(),
                                       steiner.begin() + std::ptrdiff_t(k));
      route::OarmstResult trial = router.build(grid.pins(), prefix, &scratch);
      if (trial.connected && trial.cost < result.cost) result = std::move(trial);
    }
  }

  timing_.total_seconds = total.seconds();
  return result;
}

}  // namespace oar::core
