#include "steiner/oracle.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "steiner/lin08.hpp"
#include "steiner/lin18.hpp"
#include "steiner/liu14.hpp"

namespace oar::steiner {
namespace {

HananGrid tiny_grid(std::uint64_t seed, std::int32_t pins = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 5;
  spec.v = 5;
  spec.m = 2;
  spec.min_pins = pins;
  spec.max_pins = pins;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 9;
  return gen::random_grid(spec, rng);
}

TEST(Oracle, FindsTheKnownOptimalCross) {
  HananGrid grid(5, 5, 1, std::vector<double>(4, 1.0), std::vector<double>(4, 1.0),
                 1.0);
  grid.add_pin(grid.index(0, 2, 0));
  grid.add_pin(grid.index(4, 2, 0));
  grid.add_pin(grid.index(2, 0, 0));
  grid.add_pin(grid.index(2, 4, 0));
  OracleRouter oracle(OracleConfig{2, 0});
  const auto result = oracle.route(grid);
  EXPECT_DOUBLE_EQ(result.cost, 8.0);
  EXPECT_TRUE(oracle.last_exhaustive());
  EXPECT_GT(oracle.last_evaluations(), 1);
}

class OracleBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleBoundTest, LowerBoundsEveryHeuristic) {
  const HananGrid grid = tiny_grid(GetParam());
  OracleRouter oracle(OracleConfig{2, 0});
  const double opt = oracle.route(grid).cost;

  EXPECT_LE(opt, Lin08Router().route(grid).cost + 1e-9);
  EXPECT_LE(opt, Liu14Router().route(grid).cost + 1e-9);
  EXPECT_LE(opt, Lin18Router().route(grid).cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleBoundTest,
                         ::testing::Range(std::uint64_t(1), std::uint64_t(9)));

TEST(Oracle, SubsetBudgetIsMonotone) {
  const HananGrid grid = tiny_grid(77, 5);
  const double c0 = OracleRouter(OracleConfig{0, 0}).route(grid).cost;
  const double c1 = OracleRouter(OracleConfig{1, 0}).route(grid).cost;
  const double c2 = OracleRouter(OracleConfig{2, 0}).route(grid).cost;
  EXPECT_LE(c1, c0 + 1e-9);
  EXPECT_LE(c2, c1 + 1e-9);
}

TEST(Oracle, EvaluationCapTruncates) {
  const HananGrid grid = tiny_grid(5, 5);
  OracleRouter capped(OracleConfig{2, 10});
  const auto result = capped.route(grid);
  EXPECT_TRUE(result.connected);
  EXPECT_LE(capped.last_evaluations(), 10);
  EXPECT_FALSE(capped.last_exhaustive());
}

TEST(Oracle, TwoPinLayoutIsJustTheShortestPath) {
  HananGrid grid(4, 1, 1, std::vector<double>(3, 2.0), {}, 1.0);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(3, 0, 0));
  OracleRouter oracle;
  const auto result = oracle.route(grid);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_EQ(oracle.last_evaluations(), 1);  // budget is n-2 = 0
}

}  // namespace
}  // namespace oar::steiner
