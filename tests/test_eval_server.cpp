// EvalServer unit battery (DESIGN.md §15): batch-of-one bitwise anchor,
// same-shape grouping vs. singles, flush-on-timeout for lone requests,
// bounded-queue backpressure, and clean shutdown (drain and cancel).
//
// The backpressure / cancellation tests use an "anchor" request of a
// different grid shape: the drain thread collects it and then sits in its
// straggler wait (a long flush_us), during which requests of the OTHER
// shape pile up in the bounded queue — the only way to observe a full
// queue from the outside, since normally the drain empties it immediately.

#include "mcts/eval_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "gen/random_layout.hpp"
#include "hanan/features.hpp"

namespace oar::mcts {
namespace {

using hanan::HananGrid;
using hanan::Vertex;

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 33;
  return cfg;
}

HananGrid test_grid(std::uint64_t seed, std::int32_t h = 6, std::int32_t v = 6,
                    std::int32_t m = 2, std::int32_t pins = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = h;
  spec.v = v;
  spec.m = m;
  spec.min_pins = pins;
  spec.max_pins = pins;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 10;
  return gen::random_grid(spec, rng);
}

std::size_t feature_numel(const HananGrid& grid) {
  return std::size_t(hanan::kNumFeatureChannels) * std::size_t(grid.h_dim()) *
         std::size_t(grid.v_dim()) * std::size_t(grid.m_dim());
}

/// First `n` non-pin non-blocked vertices: a deterministic extra-pin state.
std::vector<Vertex> some_state(const HananGrid& grid, std::size_t n) {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < grid.num_vertices() && out.size() < n; ++v) {
    if (!grid.is_pin(v) && !grid.is_blocked(v)) out.push_back(v);
  }
  return out;
}

TEST(EvalServer, BatchOfOneBitwiseMatchesSerialSelector) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(1);
  const std::vector<Vertex> state = some_state(grid, 2);
  // Reference through the serial selector path BEFORE the server exists.
  std::vector<double> reference;
  selector.infer_fsp_into(grid, state, reference);

  EvalServer server(selector, {});
  hanan::FeatureCache cache;
  std::vector<float> features(feature_numel(grid));
  cache.encode_into(grid, state, features.data());
  std::vector<double> out;
  server.submit(grid, features.data(), out).get();

  ASSERT_EQ(out.size(), reference.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Bitwise: the batch-of-one path runs the same single-sample engine on
    // the same feature bits.
    EXPECT_EQ(out[i], reference[i]) << "fsp diverges at priority " << i;
  }
  EXPECT_EQ(server.stats().single_batches, 1u);
}

TEST(EvalServer, SameShapeGroupingMatchesSinglesWithinTolerance) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(2, 6, 6, 2, 6);
  constexpr std::size_t kN = 6;
  std::vector<std::vector<Vertex>> states;
  std::vector<std::vector<double>> reference(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    states.push_back(some_state(grid, i));
    selector.infer_fsp_into(grid, states[i], reference[i]);
  }

  EvalServerConfig cfg;
  cfg.eval_batch = 8;
  cfg.flush_us = 200'000;  // generous straggler window: all six must fuse
  EvalServer server(selector, cfg);

  hanan::FeatureCache cache;
  std::vector<std::vector<float>> features(kN);
  std::vector<std::vector<double>> out(kN);
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < kN; ++i) {
    features[i].resize(feature_numel(grid));
    cache.encode_into(grid, states[i], features[i].data());
    futures.push_back(server.submit(grid, features[i].data(), out[i]));
  }
  for (auto& f : futures) f.get();

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i].size(), reference[i].size());
    for (std::size_t j = 0; j < out[i].size(); ++j) {
      EXPECT_NEAR(out[i][j], reference[i][j], 1e-4)
          << "request " << i << " priority " << j;
    }
  }
  // Grouping actually happened: fewer forwards than requests.
  const EvalServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, kN);
  EXPECT_GE(stats.max_batch, 2u);
  EXPECT_LT(stats.batches, kN);
}

TEST(EvalServer, LoneRequestCompletesViaFlushTimeout) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(3);
  EvalServerConfig cfg;
  cfg.eval_batch = 8;     // never fills with one request
  cfg.flush_us = 2'000;   // 2ms straggler wait, then flush
  EvalServer server(selector, cfg);

  hanan::FeatureCache cache;
  std::vector<float> features(feature_numel(grid));
  cache.encode_into(grid, {}, features.data());
  std::vector<double> out;
  server.submit(grid, features.data(), out).get();  // must not hang
  EXPECT_FALSE(out.empty());
  const EvalServer::Stats stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_GE(stats.flush_timeouts, 1u);
}

TEST(EvalServer, DifferentShapesAreNeverFused) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid small = test_grid(4, 5, 5, 2);
  const HananGrid large = test_grid(5, 7, 6, 2);
  std::vector<double> ref_small, ref_large;
  selector.infer_fsp_into(small, {}, ref_small);
  selector.infer_fsp_into(large, {}, ref_large);

  EvalServerConfig cfg;
  cfg.flush_us = 1'000;
  EvalServer server(selector, cfg);
  hanan::FeatureCache cache_s, cache_l;
  std::vector<float> f_small(feature_numel(small)), f_large(feature_numel(large));
  cache_s.encode_into(small, {}, f_small.data());
  cache_l.encode_into(large, {}, f_large.data());
  std::vector<double> out_small, out_large;
  auto fut_s = server.submit(small, f_small.data(), out_small);
  auto fut_l = server.submit(large, f_large.data(), out_large);
  fut_s.get();
  fut_l.get();

  EXPECT_EQ(server.stats().max_batch, 1u);
  EXPECT_EQ(server.stats().batches, 2u);
  ASSERT_EQ(out_small.size(), ref_small.size());
  ASSERT_EQ(out_large.size(), ref_large.size());
  for (std::size_t i = 0; i < out_small.size(); ++i) {
    EXPECT_EQ(out_small[i], ref_small[i]);
  }
  for (std::size_t i = 0; i < out_large.size(); ++i) {
    EXPECT_EQ(out_large[i], ref_large[i]);
  }
}

TEST(EvalServer, BackpressureBlocksInsteadOfDropping) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid anchor_grid = test_grid(6, 5, 5, 2);
  const HananGrid fill_grid = test_grid(7, 6, 6, 2);

  EvalServerConfig cfg;
  cfg.eval_batch = 8;
  cfg.flush_us = 500'000;  // 500ms: the drain holds the anchor this long
  cfg.queue_capacity = 2;
  EvalServer server(selector, cfg);

  hanan::FeatureCache cache;
  std::vector<float> f_anchor(feature_numel(anchor_grid));
  cache.encode_into(anchor_grid, {}, f_anchor.data());
  std::vector<double> out_anchor;
  auto fut_anchor = server.submit(anchor_grid, f_anchor.data(), out_anchor);
  // Give the drain thread time to collect the anchor and enter its
  // straggler wait; fill-shape requests then stay queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  hanan::FeatureCache fill_cache;
  std::vector<std::vector<float>> f_fill(3);
  std::vector<std::vector<double>> out_fill(3);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 2; ++i) {  // fills queue_capacity
    f_fill[std::size_t(i)].resize(feature_numel(fill_grid));
    fill_cache.encode_into(fill_grid, {}, f_fill[std::size_t(i)].data());
    futs.push_back(
        server.submit(fill_grid, f_fill[std::size_t(i)].data(), out_fill[std::size_t(i)]));
  }

  // The third submit must BLOCK (queue full), not drop or throw.
  std::atomic<bool> third_returned{false};
  f_fill[2].resize(feature_numel(fill_grid));
  fill_cache.encode_into(fill_grid, {}, f_fill[2].data());
  std::thread blocked([&] {
    futs.push_back(server.submit(fill_grid, f_fill[2].data(), out_fill[2]));
    third_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(third_returned.load())
      << "submit returned while the bounded queue was full";

  // Once the anchor flushes, the fill batch drains the queue and the
  // blocked submit proceeds; every future resolves.
  fut_anchor.get();
  blocked.join();
  EXPECT_TRUE(third_returned.load());
  for (auto& f : futs) f.get();
  EXPECT_LE(server.stats().peak_queue_depth, 2u);
  EXPECT_EQ(server.stats().requests, 4u);
}

TEST(EvalServer, ShutdownDrainsPendingRequestsByDefault) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid anchor_grid = test_grid(8, 5, 5, 2);
  const HananGrid fill_grid = test_grid(9, 6, 6, 2);

  EvalServerConfig cfg;
  cfg.flush_us = 300'000;
  EvalServer server(selector, cfg);

  hanan::FeatureCache cache;
  std::vector<float> f_anchor(feature_numel(anchor_grid));
  cache.encode_into(anchor_grid, {}, f_anchor.data());
  std::vector<double> out_anchor;
  auto fut_anchor = server.submit(anchor_grid, f_anchor.data(), out_anchor);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  hanan::FeatureCache fill_cache;
  std::vector<float> f_fill(feature_numel(fill_grid));
  fill_cache.encode_into(fill_grid, {}, f_fill.data());
  std::vector<double> out_fill;
  auto fut_fill = server.submit(fill_grid, f_fill.data(), out_fill);

  server.shutdown(/*cancel_pending=*/false);  // drains, then joins
  EXPECT_NO_THROW(fut_anchor.get());
  EXPECT_NO_THROW(fut_fill.get());
  EXPECT_FALSE(out_anchor.empty());
  EXPECT_FALSE(out_fill.empty());
  EXPECT_EQ(server.stats().cancelled, 0u);
  EXPECT_THROW(server.submit(fill_grid, f_fill.data(), out_fill),
               std::runtime_error);
}

TEST(EvalServer, ShutdownCancelFailsPendingWithEvalCancelled) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid anchor_grid = test_grid(10, 5, 5, 2);
  const HananGrid fill_grid = test_grid(11, 6, 6, 2);

  EvalServerConfig cfg;
  cfg.flush_us = 300'000;
  EvalServer server(selector, cfg);

  hanan::FeatureCache cache;
  std::vector<float> f_anchor(feature_numel(anchor_grid));
  cache.encode_into(anchor_grid, {}, f_anchor.data());
  std::vector<double> out_anchor;
  auto fut_anchor = server.submit(anchor_grid, f_anchor.data(), out_anchor);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  hanan::FeatureCache fill_cache;
  std::vector<std::vector<float>> f_fill(2);
  std::vector<std::vector<double>> out_fill(2);
  std::vector<std::future<void>> futs;
  for (std::size_t i = 0; i < 2; ++i) {
    f_fill[i].resize(feature_numel(fill_grid));
    fill_cache.encode_into(fill_grid, {}, f_fill[i].data());
    futs.push_back(server.submit(fill_grid, f_fill[i].data(), out_fill[i]));
  }

  server.shutdown(/*cancel_pending=*/true);
  // The anchor was already collected into the drain's batch: it completes.
  EXPECT_NO_THROW(fut_anchor.get());
  // The queued fill requests are cancelled — failed, never leaked.
  for (auto& f : futs) EXPECT_THROW(f.get(), EvalCancelled);
  EXPECT_EQ(server.stats().cancelled, 2u);
}

TEST(EvalServer, DestructorJoinsWithInflightRequests) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(12);
  std::vector<double> out1, out2;
  hanan::FeatureCache cache;
  std::vector<float> features(feature_numel(grid));
  cache.encode_into(grid, {}, features.data());
  std::future<void> f1, f2;
  {
    EvalServerConfig cfg;
    cfg.flush_us = 100'000;
    EvalServer server(selector, cfg);
    f1 = server.submit(grid, features.data(), out1);
    f2 = server.submit(grid, features.data(), out2);
    // Destructor runs here with the requests possibly still queued: it
    // must drain them (futures resolve) and join without hanging/leaking.
  }
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
  EXPECT_FALSE(out1.empty());
  EXPECT_FALSE(out2.empty());
}

}  // namespace
}  // namespace oar::mcts
