#pragma once

// Random layout generation.
//
// Matches the paper's data distributions:
//  * Training (Sec. 3.6): H x V in {16, 24, 32}^2, M in {4, 6, 8, 10},
//    edge costs 1..1000, via cost 3..5, obstacles of size 1x3 or 1x4
//    (horizontal or vertical, overlaps allowed), 3..6 pins.
//  * Testing (Table 1): dimensions 32..512, 4..10 layers, pins and obstacle
//    counts scaling with size.
// Layouts are generated directly in "grid world" — as Hanan grid graphs
// with the given dimensions — exactly as the paper specifies its random
// subsets by their Hanan-graph size.

#include <optional>

#include "hanan/hanan_grid.hpp"
#include "util/rng.hpp"

namespace oar::gen {

using hanan::HananGrid;
using hanan::Vertex;

struct RandomGridSpec {
  std::int32_t h = 16;
  std::int32_t v = 16;
  std::int32_t m = 4;
  std::int32_t min_pins = 3;
  std::int32_t max_pins = 6;
  std::int32_t min_obstacles = 32;
  std::int32_t max_obstacles = 64;
  /// Obstacle run lengths (paper: 1x3 or 1x4).
  std::int32_t min_obstacle_len = 3;
  std::int32_t max_obstacle_len = 4;
  /// Integer edge-cost range (paper: 1..1000).
  std::int32_t min_edge_cost = 1;
  std::int32_t max_edge_cost = 1000;
  /// Via cost range (paper: 3..5).
  double min_via_cost = 3.0;
  double max_via_cost = 5.0;
  /// Resample pins until every pin can reach every other (maze check);
  /// gives up after a few attempts and returns the last layout regardless.
  bool ensure_routable = true;
};

/// One random Hanan-grid layout drawn from `spec`.
HananGrid random_grid(const RandomGridSpec& spec, util::Rng& rng);

/// The paper's Table 1 subsets, scaled for CPU benchmarking: same relative
/// pin/obstacle densities, smaller absolute dimensions.  `scale` divides
/// the paper's H/V dimensions (scale=1 reproduces the paper's settings).
struct TestSubsetSpec {
  std::string name;
  RandomGridSpec spec;   // m is chosen uniformly in [4, 10] per layout
  std::int32_t min_m = 4;
  std::int32_t max_m = 10;
};

/// Builds the T32..T512 subset table at the given downscale factor.
std::vector<TestSubsetSpec> paper_test_subsets(std::int32_t scale);

/// Random *geometric* layouts (physical coordinates, rectangular per-layer
/// obstacles).  Exercises the HananGrid::from_layout path end to end; the
/// grid-world generator above matches the paper's subsets, this one models
/// macro/blockage floorplans.
struct RandomLayoutSpec {
  std::int32_t width = 1000;
  std::int32_t height = 1000;
  std::int32_t layers = 4;
  std::int32_t min_pins = 4;
  std::int32_t max_pins = 8;
  std::int32_t min_obstacles = 2;
  std::int32_t max_obstacles = 6;
  /// Obstacle edge lengths as a fraction of the layout span.
  double min_obstacle_frac = 0.05;
  double max_obstacle_frac = 0.30;
  double min_via_cost = 3.0;
  double max_via_cost = 5.0;
};

/// One random geometric layout; pins are re-drawn until none is buried
/// strictly inside an obstacle.
geom::Layout random_layout(const RandomLayoutSpec& spec, util::Rng& rng);

/// Draw one layout from a subset spec (randomizing M within its range).
HananGrid random_subset_grid(const TestSubsetSpec& subset, util::Rng& rng);

}  // namespace oar::gen
