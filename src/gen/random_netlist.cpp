#include "gen/random_netlist.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "route/maze.hpp"

namespace oar::gen {

using chip::Net;
using chip::Netlist;
using hanan::HananGrid;
using hanan::Vertex;

namespace {

/// True when every pin of `pins` reaches the first one (single maze flood;
/// the grid graph is undirected, so pairwise reachability follows).
bool routable(route::MazeRouter& maze, const std::vector<Vertex>& pins) {
  maze.run({pins.front()});
  for (const Vertex p : pins) {
    if (maze.dist(p) == route::MazeRouter::kInf) return false;
  }
  return true;
}

}  // namespace

chip::Netlist random_netlist(const HananGrid& grid, std::int32_t n_nets,
                             util::Rng& rng, RandomNetlistSpec spec) {
  spec.validate();
  util::check_field(n_nets >= 0, "random_netlist", "n_nets", "be >= 0",
                    n_nets);

  // Candidate pool: unblocked vertices that are not pins of the grid
  // itself.  Accepted pins leave the pool, which is what makes the
  // netlist overlap-free by construction.
  std::vector<Vertex> pool;
  pool.reserve(std::size_t(grid.num_vertices()));
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (!grid.is_blocked(v)) pool.push_back(v);
  }
  for (const Vertex p : grid.pins()) {
    if (const auto it = std::find(pool.begin(), pool.end(), p);
        it != pool.end()) {
      pool.erase(it);
    }
  }

  route::MazeRouter maze(grid);

  Netlist netlist;
  netlist.nets.reserve(std::size_t(n_nets));
  std::vector<std::size_t> picked;  // indices into pool, this attempt
  for (std::int32_t net_idx = 0; net_idx < n_nets; ++net_idx) {
    const std::int32_t want =
        std::int32_t(rng.uniform_int(spec.min_pins, spec.max_pins));
    if (std::size_t(want) > pool.size()) {
      throw std::runtime_error(
          "random_netlist: grid too full for net " + std::to_string(net_idx) +
          " (" + std::to_string(pool.size()) + " free vertices, need " +
          std::to_string(want) + ")");
    }

    bool accepted = false;
    for (std::int32_t attempt = 0; attempt < spec.max_attempts_per_net;
         ++attempt) {
      picked.clear();
      while (picked.size() < std::size_t(want)) {
        const auto idx = std::size_t(
            rng.uniform_int(0, std::int64_t(pool.size()) - 1));
        if (std::find(picked.begin(), picked.end(), idx) == picked.end()) {
          picked.push_back(idx);
        }
      }
      Net net;
      net.name = "n" + std::to_string(net_idx);
      net.pins.reserve(picked.size());
      for (const std::size_t idx : picked) net.pins.push_back(pool[idx]);
      std::sort(net.pins.begin(), net.pins.end());
      if (spec.ensure_routable && !routable(maze, net.pins)) continue;

      // Accept: remove the pins from the pool (descending swap-pop so the
      // earlier indices stay valid).
      std::sort(picked.begin(), picked.end(), std::greater<>());
      for (const std::size_t idx : picked) {
        pool[idx] = pool.back();
        pool.pop_back();
      }
      netlist.nets.push_back(std::move(net));
      accepted = true;
      break;
    }
    if (!accepted) {
      throw std::runtime_error(
          "random_netlist: no mutually reachable pin set for net " +
          std::to_string(net_idx) + " after " +
          std::to_string(spec.max_attempts_per_net) +
          " attempts (grid too fragmented)");
    }
  }
  return netlist;
}

}  // namespace oar::gen
