// Tree-parallel CombMcts scaling benchmark (DESIGN.md §15).
//
// Measures self-play episode throughput of ParallelCombMcts at 1, 2 and 4
// workers against the serial CombMcts on identical fixed-seed layouts, and
// cross-checks correctness:
//
//   * single-worker parallel search must match the serial search BITWISE
//     (labels, executed combination, costs, tree statistics),
//   * the virtual-loss invariant (applied == reverted) must hold for every
//     episode at every worker count,
//   * best_cost <= initial_cost on every episode.
//
// All correctness checks are hard failures in both modes.  The timing gate
// — >= 2.5x episodes/sec at 4 workers vs serial on the paper's 32x32x8
// layout size — is asserted only in full mode AND on hardware with >= 4
// cores: `--smoke` (the CI lane, often a small shared runner) runs a
// reduced layout and asserts correctness only.  Results go to stdout and
// BENCH_mcts_parallel.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "gen/random_layout.hpp"
#include "mcts/comb_mcts.hpp"
#include "mcts/parallel.hpp"
#include "rl/selector.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace oar;
using hanan::HananGrid;
using hanan::Vertex;

HananGrid make_grid(std::int32_t dim, std::int32_t m, std::int32_t pins,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = spec.v = dim;
  spec.m = m;
  spec.min_pins = spec.max_pins = pins;
  spec.min_obstacles = spec.max_obstacles = std::max(1, dim * dim * m / 40);
  return gen::random_grid(spec, rng);
}

void check_episode(const mcts::CombMctsResult& r, int workers, int episode) {
  if (r.stats.vloss_applied != r.stats.vloss_reverted) {
    std::fprintf(stderr,
                 "FATAL: vloss invariant broken (workers=%d episode=%d: "
                 "applied %lld != reverted %lld)\n",
                 workers, episode, (long long)r.stats.vloss_applied,
                 (long long)r.stats.vloss_reverted);
    std::exit(1);
  }
  if (std::isfinite(r.initial_cost) && r.best_cost > r.initial_cost + 1e-9) {
    std::fprintf(stderr,
                 "FATAL: best_cost above initial_cost (workers=%d episode=%d)\n",
                 workers, episode);
    std::exit(1);
  }
}

bool bitwise_equal(const mcts::CombMctsResult& a, const mcts::CombMctsResult& b) {
  return a.initial_cost == b.initial_cost && a.final_cost == b.final_cost &&
         a.best_cost == b.best_cost && a.selected == b.selected &&
         a.label == b.label && a.label_mask == b.label_mask &&
         a.stats.iterations == b.stats.iterations &&
         a.stats.expansions == b.stats.expansions &&
         a.stats.simulations == b.stats.simulations &&
         a.stats.nodes == b.stats.nodes &&
         a.stats.executed_moves == b.stats.executed_moves;
}

struct WorkerRun {
  int workers = 0;  // 0 = serial CombMcts
  double eps = 0.0;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int dim = smoke ? 8 : 32;
  const int layers = smoke ? 2 : 8;
  const int pins = smoke ? 5 : 6;
  const int episodes = smoke ? 2 : 4;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("bench_mcts_parallel: %dx%dx%d, %d episodes per config, %u "
              "hardware threads%s\n",
              dim, dim, layers, episodes, hw, smoke ? " (smoke)" : "");

  mcts::CombMctsConfig cfg;
  cfg.iterations_per_move = smoke ? 16 : 48;
  cfg.max_children = 8;
  cfg.flush_us = 200;

  std::vector<HananGrid> grids;
  for (int e = 0; e < episodes; ++e) {
    grids.push_back(make_grid(dim, layers, pins, 0x5eed + std::uint64_t(e)));
  }

  rl::SteinerSelector selector;  // default UNet: base 8, depth 2
  selector.net().set_training(false);

  // --- correctness anchor: serial vs single-worker parallel, bitwise ---
  {
    const HananGrid grid = make_grid(smoke ? 8 : 12, 2, 5, 0xb17);
    mcts::CombMctsConfig small = cfg;
    small.iterations_per_move = 16;
    mcts::CombMcts serial(selector, small);
    const mcts::CombMctsResult a = serial.run(grid);
    small.search_workers = 1;
    mcts::ParallelCombMcts parallel(selector, small);
    const mcts::CombMctsResult b = parallel.run(grid);
    if (!bitwise_equal(a, b)) {
      std::fprintf(stderr,
                   "FATAL: single-worker parallel search diverged from serial\n");
      return 1;
    }
    std::printf("  bitwise  : 1-worker parallel == serial  OK\n");
  }

  // --- throughput: serial, then 1/2/4 workers on the same layouts ---
  std::vector<WorkerRun> runs;
  {
    WorkerRun run;
    run.workers = 0;
    mcts::CombMcts search(selector, cfg);
    util::Timer timer;
    for (int e = 0; e < episodes; ++e) {
      const mcts::CombMctsResult r = search.run(grids[std::size_t(e)]);
      check_episode(r, 0, e);
    }
    run.seconds = timer.seconds();
    run.eps = double(episodes) / std::max(run.seconds, 1e-12);
    runs.push_back(run);
    std::printf("  serial   : %6.3f episodes/s\n", run.eps);
  }
  for (const int workers : {1, 2, 4}) {
    WorkerRun run;
    run.workers = workers;
    mcts::CombMctsConfig wcfg = cfg;
    wcfg.search_workers = workers;
    mcts::ParallelCombMcts search(selector, wcfg);
    util::Timer timer;
    for (int e = 0; e < episodes; ++e) {
      const mcts::CombMctsResult r = search.run(grids[std::size_t(e)]);
      check_episode(r, workers, e);
    }
    run.seconds = timer.seconds();
    run.eps = double(episodes) / std::max(run.seconds, 1e-12);
    runs.push_back(run);
    std::printf("  %dworker%s : %6.3f episodes/s (%.2fx vs serial)\n", workers,
                workers == 1 ? " " : "s", run.eps,
                run.eps / std::max(runs[0].eps, 1e-12));
  }

  const double speedup4 = runs.back().eps / std::max(runs[0].eps, 1e-12);
  const bool gate_enforced = !smoke && hw >= 4;
  if (gate_enforced && speedup4 < 2.5) {
    std::fprintf(stderr,
                 "FATAL: 4-worker speedup %.2fx below the 2.5x gate "
                 "(%u hardware threads)\n",
                 speedup4, hw);
    return 1;
  }
  if (!gate_enforced) {
    std::printf("  timing gate not enforced (%s)\n",
                smoke ? "smoke mode" : "fewer than 4 hardware threads");
  }

  if (std::FILE* f = std::fopen("BENCH_mcts_parallel.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"grid\": {\"h\": %d, \"v\": %d, \"m\": %d, \"pins\": %d},\n"
                 "  \"episodes_per_config\": %d,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"serial_eps\": %.4f,\n"
                 "  \"workers\": [\n",
                 dim, dim, layers, pins, episodes, hw, runs[0].eps);
    for (std::size_t i = 1; i < runs.size(); ++i) {
      std::fprintf(f,
                   "    {\"workers\": %d, \"eps\": %.4f, \"speedup\": %.3f}%s\n",
                   runs[i].workers, runs[i].eps,
                   runs[i].eps / std::max(runs[0].eps, 1e-12),
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"speedup_4w\": %.3f,\n"
                 "  \"gate\": {\"threshold\": 2.5, \"enforced\": %s},\n"
                 "  %s,\n"
                 "  \"smoke\": %s\n"
                 "}\n",
                 speedup4, gate_enforced ? "true" : "false",
                 bench::machine_json().c_str(), smoke ? "true" : "false");
    std::fclose(f);
    std::printf("  wrote BENCH_mcts_parallel.json\n");
  }
  return 0;
}
