file(REMOVE_RECURSE
  "CMakeFiles/benchmark_suite.dir/benchmark_suite.cpp.o"
  "CMakeFiles/benchmark_suite.dir/benchmark_suite.cpp.o.d"
  "benchmark_suite"
  "benchmark_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
