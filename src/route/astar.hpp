#pragma once

// Point-to-point A* router over a HananGrid.
//
// The heuristic is the obstacle-blind separable distance (sum of remaining
// x/y step costs plus via cost times the layer difference) — admissible and
// consistent because obstacles only remove edges and never shorten paths.
// A* is the fast path for pairwise queries (candidate evaluation, distance
// oracles); the multi-source MazeRouter remains the tool for tree growth.

#include <vector>

#include "route/maze.hpp"

namespace oar::route {

class AStarRouter {
 public:
  explicit AStarRouter(const HananGrid& grid);

  /// Shortest obstacle-avoiding path cost from `source` to `target`;
  /// +inf when unreachable.
  double distance(Vertex source, Vertex target);

  /// Shortest path inclusive of both endpoints; empty when unreachable.
  std::vector<Vertex> path(Vertex source, Vertex target);

  /// Vertices settled by the most recent query (search effort metric;
  /// the A* heuristic should settle far fewer than a blind Dijkstra).
  std::int64_t last_settled() const { return last_settled_; }

  static constexpr double kInf = MazeRouter::kInf;

 private:
  /// Runs the search; returns true when the target was reached.
  bool search(Vertex source, Vertex target);

  double heuristic(Vertex from, Vertex target) const;

  const HananGrid& grid_;
  std::vector<double> x_prefix_, y_prefix_;  // cumulative step costs
  std::vector<double> g_;
  std::vector<Vertex> parent_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t current_epoch_ = 0;
  std::int64_t last_settled_ = 0;
  double last_distance_ = kInf;
  Vertex last_target_ = hanan::kInvalidVertex;
};

}  // namespace oar::route
