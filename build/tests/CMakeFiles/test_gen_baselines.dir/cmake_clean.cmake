file(REMOVE_RECURSE
  "CMakeFiles/test_gen_baselines.dir/test_baselines.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_baselines.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_gen.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_gen.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_grid_io.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_grid_io.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_multi_net.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_multi_net.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_oracle.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_oracle.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_random_layout_geom.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_random_layout_geom.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_registry.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_registry.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_rl_router.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_rl_router.cpp.o.d"
  "CMakeFiles/test_gen_baselines.dir/test_svg.cpp.o"
  "CMakeFiles/test_gen_baselines.dir/test_svg.cpp.o.d"
  "test_gen_baselines"
  "test_gen_baselines.pdb"
  "test_gen_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
