#include "core/registry.hpp"

#include <algorithm>

#include "core/mcts_router.hpp"
#include "core/pretrained.hpp"
#include "core/rl_router.hpp"
#include "steiner/lin08.hpp"
#include "steiner/lin18.hpp"
#include "steiner/liu14.hpp"
#include "steiner/oracle.hpp"

namespace oar::core {

RouterRegistry& RouterRegistry::instance() {
  static RouterRegistry registry = [] {
    RouterRegistry r;
    r.register_router("lin08", [] {
      return std::unique_ptr<steiner::Router>(new steiner::Lin08Router());
    });
    r.register_router("liu14", [] {
      return std::unique_ptr<steiner::Router>(new steiner::Liu14Router());
    });
    r.register_router("lin18", [] {
      return std::unique_ptr<steiner::Router>(new steiner::Lin18Router());
    });
    r.register_router("oracle", [] {
      return std::unique_ptr<steiner::Router>(new steiner::OracleRouter());
    });
    r.register_router("rl-ours", [] {
      return std::unique_ptr<steiner::Router>(
          new RlRouter(load_or_train_pretrained()));
    });
    r.register_router("rl-ours+sweep", [] {
      return std::unique_ptr<steiner::Router>(
          new RlRouter(load_or_train_pretrained(), RlRouterConfig{true}));
    });
    r.register_router("rl-mcts", [] {
      return std::unique_ptr<steiner::Router>(
          new MctsRouter(load_or_train_pretrained()));
    });
    return r;
  }();
  return registry;
}

void RouterRegistry::register_router(const std::string& name, RouterFactory factory) {
  for (auto& [existing, f] : factories_) {
    if (existing == name) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<steiner::Router> RouterRegistry::create(const std::string& name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return factory();
  }
  return nullptr;
}

bool RouterRegistry::contains(const std::string& name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> RouterRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace oar::core
