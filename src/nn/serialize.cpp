#include "nn/serialize.hpp"

#include <cstdio>
#include <fstream>

#include "util/logging.hpp"

namespace oar::nn {

namespace {
constexpr char kMagic[] = "OARNN1\n";
}

bool save_parameters(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic) - 1);
  const auto params = module.parameters();
  const auto count = std::int32_t(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    const auto name_len = std::int32_t(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    const auto rank = std::int32_t(p->value.dim());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (std::int32_t d = 0; d < rank; ++d) {
      const std::int32_t dim = p->value.shape(d);
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              std::streamsize(p->value.numel() * std::int64_t(sizeof(float))));
  }
  return bool(out);
}

bool load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, sizeof(magic)) != std::string(kMagic, sizeof(magic))) {
    util::log_error("checkpoint magic mismatch in ", path);
    return false;
  }
  std::int32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = module.parameters();
  if (!in || count != std::int32_t(params.size())) {
    util::log_error("checkpoint parameter count mismatch in ", path);
    return false;
  }
  for (Parameter* p : params) {
    std::int32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len < 0 || name_len > 4096) return false;
    std::string name(std::size_t(name_len), '\0');
    in.read(name.data(), name_len);
    if (name != p->name) {
      util::log_error("checkpoint name mismatch: expected ", p->name, " got ", name);
      return false;
    }
    std::int32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in || rank != p->value.dim()) return false;
    for (std::int32_t d = 0; d < rank; ++d) {
      std::int32_t dim = 0;
      in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (!in || dim != p->value.shape(d)) {
        util::log_error("checkpoint shape mismatch for ", p->name);
        return false;
      }
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            std::streamsize(p->value.numel() * std::int64_t(sizeof(float))));
    if (!in) return false;
  }
  return true;
}

void copy_parameters(Module& dst, Module& src) {
  const auto dparams = dst.parameters();
  const auto sparams = src.parameters();
  assert(dparams.size() == sparams.size());
  for (std::size_t i = 0; i < dparams.size(); ++i) {
    assert(dparams[i]->value.shape() == sparams[i]->value.shape());
    dparams[i]->value = sparams[i]->value;
  }
}

}  // namespace oar::nn
