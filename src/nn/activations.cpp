#include "nn/activations.hpp"

#include <cmath>

namespace oar::nn {

float Sigmoid::apply(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

void sigmoid_into(const float* x, std::int64_t n, double* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    if (v >= 0.0f) {
      const float z = std::exp(-v);
      out[i] = double(1.0f / (1.0f + z));
    } else {
      const float z = std::exp(v);
      out[i] = double(z / (1.0f + z));
    }
  }
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = apply(out[i]);
  output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  assert(output_.defined());
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    const float y = output_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

}  // namespace oar::nn
