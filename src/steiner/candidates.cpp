#include "steiner/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace oar::steiner {

DistanceOracle::DistanceOracle(const HananGrid& grid) : grid_(grid) {
  x_prefix_.assign(std::size_t(grid.h_dim()), 0.0);
  for (std::int32_t h = 1; h < grid.h_dim(); ++h) {
    x_prefix_[std::size_t(h)] = x_prefix_[std::size_t(h - 1)] + grid.x_step(h - 1);
  }
  y_prefix_.assign(std::size_t(grid.v_dim()), 0.0);
  for (std::int32_t v = 1; v < grid.v_dim(); ++v) {
    y_prefix_[std::size_t(v)] = y_prefix_[std::size_t(v - 1)] + grid.y_step(v - 1);
  }
}

double DistanceOracle::operator()(Vertex a, Vertex b) const {
  const auto ca = grid_.cell(a);
  const auto cb = grid_.cell(b);
  return std::abs(x_prefix_[std::size_t(ca.h)] - x_prefix_[std::size_t(cb.h)]) +
         std::abs(y_prefix_[std::size_t(ca.v)] - y_prefix_[std::size_t(cb.v)]) +
         grid_.via_cost() * std::abs(ca.m - cb.m);
}

std::vector<Vertex> corner_candidates(const HananGrid& grid,
                                      const std::vector<Vertex>& terminals,
                                      int neighbors_per_terminal,
                                      int max_candidates,
                                      const std::vector<Vertex>& exclude) {
  const DistanceOracle dist(grid);
  std::unordered_set<Vertex> banned(terminals.begin(), terminals.end());
  banned.insert(exclude.begin(), exclude.end());

  // k nearest terminals per terminal (brute force: terminal lists are the
  // net's pins, routinely tens, worst case a couple thousand).
  struct Scored {
    Vertex v;
    double score;
  };
  std::vector<Scored> scored;
  std::unordered_set<Vertex> seen;

  auto consider = [&](Vertex cand, Vertex a, Vertex b) {
    if (cand < 0 || cand >= grid.num_vertices()) return;
    if (grid.is_blocked(cand) || banned.count(cand)) return;
    if (!seen.insert(cand).second) return;
    // Centrality: how far the candidate detours from the pair it serves.
    const double detour = dist(cand, a) + dist(cand, b) - dist(a, b);
    scored.push_back({cand, detour});
  };

  for (std::size_t i = 0; i < terminals.size(); ++i) {
    // Partial sort of neighbors by distance.
    std::vector<std::pair<double, Vertex>> nbrs;
    nbrs.reserve(terminals.size() - 1);
    for (std::size_t j = 0; j < terminals.size(); ++j) {
      if (i == j) continue;
      nbrs.emplace_back(dist(terminals[i], terminals[j]), terminals[j]);
    }
    const std::size_t k = std::min<std::size_t>(std::size_t(neighbors_per_terminal), nbrs.size());
    std::partial_sort(nbrs.begin(), nbrs.begin() + std::ptrdiff_t(k), nbrs.end());

    const auto ca = grid.cell(terminals[i]);
    for (std::size_t j = 0; j < k; ++j) {
      const Vertex b = nbrs[j].second;
      const auto cb = grid.cell(b);
      // Rectilinear corners on both layers.
      consider(grid.index(ca.h, cb.v, ca.m), terminals[i], b);
      consider(grid.index(cb.h, ca.v, ca.m), terminals[i], b);
      consider(grid.index(ca.h, cb.v, cb.m), terminals[i], b);
      consider(grid.index(cb.h, ca.v, cb.m), terminals[i], b);
      // Midpoint cell.
      consider(grid.index((ca.h + cb.h) / 2, (ca.v + cb.v) / 2, ca.m), terminals[i], b);
    }
  }

  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.score < b.score || (a.score == b.score && a.v < b.v);
            });
  std::vector<Vertex> out;
  out.reserve(std::min<std::size_t>(scored.size(), std::size_t(max_candidates)));
  for (const auto& s : scored) {
    if (std::ssize(out) >= max_candidates) break;
    out.push_back(s.v);
  }
  return out;
}

}  // namespace oar::steiner
