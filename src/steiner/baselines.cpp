#include <algorithm>
#include <unordered_set>

#include "steiner/candidates.hpp"
#include "steiner/lin08.hpp"
#include "steiner/lin18.hpp"
#include "steiner/liu14.hpp"
#include "util/validate.hpp"

namespace oar::steiner {

void Liu14Config::validate() const {
  util::check_field(max_evaluations >= 1, "Liu14Config", "max_evaluations",
                    "be >= 1", max_evaluations);
  util::check_field(neighbors_per_terminal >= 1, "Liu14Config",
                    "neighbors_per_terminal", "be >= 1",
                    neighbors_per_terminal);
}

void Lin18Config::validate() const {
  util::check_field(max_evaluations_per_round >= 1, "Lin18Config",
                    "max_evaluations_per_round", "be >= 1",
                    max_evaluations_per_round);
  util::check_field(neighbors_per_terminal >= 1, "Lin18Config",
                    "neighbors_per_terminal", "be >= 1",
                    neighbors_per_terminal);
  util::check_field(max_rounds >= 1, "Lin18Config", "max_rounds", "be >= 1",
                    max_rounds);
  util::check_field(min_gain >= 0.0, "Lin18Config", "min_gain",
                    "be non-negative", min_gain);
}

double mst_cost(const HananGrid& grid, route::RouterScratch* scratch) {
  route::OarmstConfig cfg;
  cfg.attach = route::AttachMode::kTerminalsOnly;
  cfg.cost_model = route::CostModel::kSumOfPaths;
  cfg.remove_redundant_steiner = false;
  return route::OarmstRouter(grid, cfg).build(grid.pins(), {}, scratch).cost;
}

route::OarmstResult Lin08Router::route(const HananGrid& grid) {
  route::OarmstConfig cfg;  // tree-vertex attachment, union-length cost
  return route::OarmstRouter(grid, cfg).build(grid.pins());
}

route::OarmstResult Liu14Router::route(const HananGrid& grid) {
  route::OarmstRouter router(grid);
  route::RouterScratch& scratch = route::local_router_scratch();
  route::OarmstResult best = router.build(grid.pins(), {}, &scratch);

  const std::vector<Vertex> candidates = corner_candidates(
      grid, grid.pins(), config_.neighbors_per_terminal, config_.max_evaluations);

  // One greedy pass: keep every candidate whose exact insertion gain (with
  // all previously kept candidates present) is positive.
  std::vector<Vertex> kept;
  const std::size_t budget = grid.pins().size() >= 2 ? grid.pins().size() - 2 : 0;
  for (Vertex c : candidates) {
    if (kept.size() >= budget) break;
    std::vector<Vertex> trial = kept;
    trial.push_back(c);
    route::OarmstResult result = router.build(grid.pins(), trial, &scratch);
    if (result.connected && result.cost < best.cost) {
      best = std::move(result);
      kept.push_back(c);
    }
  }
  return best;
}

route::OarmstResult Lin18Router::route(const HananGrid& grid) {
  route::OarmstRouter router(grid);
  route::RouterScratch& scratch = route::local_router_scratch();
  route::OarmstResult best = router.build(grid.pins(), {}, &scratch);

  const std::size_t budget = grid.pins().size() >= 2 ? grid.pins().size() - 2 : 0;
  std::vector<Vertex> kept;

  // Iterated 1-Steiner: each round re-derives candidates around the current
  // terminal set (pins + kept Steiner points) and inserts the single best
  // improving candidate.
  for (int round = 0; round < config_.max_rounds && kept.size() < budget; ++round) {
    std::vector<Vertex> terminals = grid.pins();
    terminals.insert(terminals.end(), kept.begin(), kept.end());
    const std::vector<Vertex> candidates =
        corner_candidates(grid, terminals, config_.neighbors_per_terminal,
                          config_.max_evaluations_per_round, kept);

    Vertex best_candidate = hanan::kInvalidVertex;
    route::OarmstResult best_trial;
    for (Vertex c : candidates) {
      std::vector<Vertex> trial = kept;
      trial.push_back(c);
      route::OarmstResult result = router.build(grid.pins(), trial, &scratch);
      if (!result.connected) continue;
      const double reference =
          best_candidate == hanan::kInvalidVertex ? best.cost : best_trial.cost;
      if (result.cost < reference - config_.min_gain * best.cost) {
        best_trial = std::move(result);
        best_candidate = c;
      }
    }
    if (best_candidate == hanan::kInvalidVertex) break;
    best = std::move(best_trial);
    kept.push_back(best_candidate);
  }

  // Retracing pass: rebuild from the final irredundant Steiner set (the
  // redundancy filter inside build() may have dropped earlier picks).
  route::OarmstResult retraced = router.build(grid.pins(), best.kept_steiner, &scratch);
  if (retraced.connected && retraced.cost < best.cost) best = std::move(retraced);
  return best;
}

}  // namespace oar::steiner
