// Cross-module property tests: invariants that tie the substrates together
// (encoding vs augmentation, routers vs transforms, selector vs encoding).

#include <gtest/gtest.h>

#include "core/oarsmtrl.hpp"
#include "rl/augment.hpp"

namespace oar {
namespace {

hanan::HananGrid property_grid(std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 7;
  spec.v = 5;
  spec.m = 3;
  spec.min_pins = 4;
  spec.max_pins = 6;
  spec.min_obstacles = 3;
  spec.max_obstacles = 6;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 8;
  return gen::random_grid(spec, rng);
}

class EncodingAugmentTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EncodingAugmentTest, PinObstacleChannelsFollowTheTransform) {
  const auto grid = property_grid(11);
  const auto spec = rl::all_augmentations()[GetParam()];
  const auto transformed = rl::transform_grid(grid, spec);

  const auto base = hanan::encode_features(grid);
  const auto trans = hanan::encode_features(transformed);

  for (hanan::Vertex v = 0; v < grid.num_vertices(); ++v) {
    const auto c = grid.cell(v);
    const hanan::Vertex tv = rl::transform_vertex(grid, v, spec);
    const auto tc = transformed.cell(tv);
    // Channel 0 (pin) and 1 (obstacle) are scalar fields: they must move
    // with the vertex under any rotation/reflection.
    EXPECT_FLOAT_EQ(trans.at(0, tc.h, tc.v, tc.m), base.at(0, c.h, c.v, c.m));
    EXPECT_FLOAT_EQ(trans.at(1, tc.h, tc.v, tc.m), base.at(1, c.h, c.v, c.m));
    // The four direction-cost channels permute among themselves; their sum
    // at a vertex is rotation/reflection invariant.
    const float base_sum = base.at(2, c.h, c.v, c.m) + base.at(3, c.h, c.v, c.m) +
                           base.at(4, c.h, c.v, c.m) + base.at(5, c.h, c.v, c.m);
    const float trans_sum = trans.at(2, tc.h, tc.v, tc.m) +
                            trans.at(3, tc.h, tc.v, tc.m) +
                            trans.at(4, tc.h, tc.v, tc.m) +
                            trans.at(5, tc.h, tc.v, tc.m);
    EXPECT_NEAR(trans_sum, base_sum, 1e-5);
    // Via channel is uniform and invariant.
    EXPECT_FLOAT_EQ(trans.at(6, tc.h, tc.v, tc.m), base.at(6, c.h, c.v, c.m));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransforms, EncodingAugmentTest,
                         ::testing::Range(std::size_t(0), std::size_t(16)));

class RouterTransformInvarianceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RouterTransformInvarianceTest, BaselineCostsAreTransformInvariant) {
  const auto grid = property_grid(23);
  const auto spec = rl::all_augmentations()[GetParam()];
  const auto transformed = rl::transform_grid(grid, spec);

  steiner::Lin18Router lin18;
  const double a = lin18.route(grid).cost;
  const double b = lin18.route(transformed).cost;
  EXPECT_NEAR(a, b, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SampleTransforms, RouterTransformInvarianceTest,
                         ::testing::Values(std::size_t(0), std::size_t(3),
                                           std::size_t(5), std::size_t(10),
                                           std::size_t(15)));

TEST(SelectorEncodingProperty, FspDependsOnlyOnTheEncodedState) {
  // Two grids with identical encodings must produce identical fsp maps.
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 5;
  rl::SteinerSelector selector(cfg);
  const auto grid = property_grid(31);
  const auto fsp1 = selector.infer_fsp(grid);
  const auto fsp2 = selector.infer_fsp(grid);
  ASSERT_EQ(fsp1.size(), fsp2.size());
  for (std::size_t i = 0; i < fsp1.size(); ++i) EXPECT_DOUBLE_EQ(fsp1[i], fsp2[i]);
}

TEST(OarmstProperty, AddingTheKeptSteinerSetBackReproducesTheCost) {
  // Routing with exactly the irredundant Steiner set of a previous result
  // must not be worse than that result (idempotence of the removal loop).
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    const auto grid = property_grid(seed);
    route::OarmstRouter router(grid);
    const auto first = router.build(grid.pins(), {grid.index(3, 2, 1)});
    if (!first.connected) continue;
    const auto second = router.build(grid.pins(), first.kept_steiner);
    EXPECT_LE(second.cost, first.cost + 1e-9);
  }
}

TEST(MstProperty, MstUpperBoundsEveryRouter) {
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    const auto grid = property_grid(seed);
    const double mst = steiner::mst_cost(grid);
    steiner::Lin08Router lin08;
    steiner::Lin18Router lin18;
    const auto a = lin08.route(grid);
    const auto b = lin18.route(grid);
    if (!a.connected || !b.connected) continue;
    EXPECT_LE(a.cost, mst + 1e-9);
    EXPECT_LE(b.cost, mst + 1e-9);
  }
}

class CombMctsLabelProperty : public ::testing::Test {
 protected:
  // One search per seed, shared by the three label invariants below.
  static mcts::CombMctsResult run_search(std::uint64_t seed) {
    rl::SelectorConfig cfg;
    cfg.unet.base_channels = 4;
    cfg.unet.depth = 1;
    cfg.unet.seed = 9;
    rl::SteinerSelector selector(cfg);
    mcts::CombMctsConfig mcts_cfg;
    mcts_cfg.iterations_per_move = 16;
    mcts::CombMcts search(selector, mcts_cfg);
    return search.run(property_grid(seed));
  }
};

TEST_F(CombMctsLabelProperty, LabelsAlwaysInUnitInterval) {
  // eq. (3): L_fsp(v) = n_sel(v) / n_opp(v) is a frequency and must stay
  // in [0, 1] for every vertex of every randomized layout.
  for (std::uint64_t seed = 70; seed < 76; ++seed) {
    const auto result = run_search(seed);
    const auto grid = property_grid(seed);
    ASSERT_EQ(result.label.size(), std::size_t(grid.num_vertices()));
    for (const float l : result.label) {
      EXPECT_GE(l, 0.0f);
      EXPECT_LE(l, 1.0f);
    }
  }
}

TEST_F(CombMctsLabelProperty, MaskNeverSetOnPinsOrBlockedVertices) {
  for (std::uint64_t seed = 70; seed < 76; ++seed) {
    const auto result = run_search(seed);
    const auto grid = property_grid(seed);
    ASSERT_EQ(result.label_mask.size(), std::size_t(grid.num_vertices()));
    for (hanan::Vertex v = 0; v < grid.num_vertices(); ++v) {
      if (grid.is_pin(v) || grid.is_blocked(v)) {
        EXPECT_EQ(result.label_mask[std::size_t(grid.priority_of(v))], 0.0f)
            << "vertex " << v << " of seed " << seed;
      }
    }
  }
}

TEST_F(CombMctsLabelProperty, BestCostNeverExceedsInitialCost) {
  // The executed path starts at the no-Steiner-point state, so the best
  // exact cost along it can never exceed the initial construction.
  for (std::uint64_t seed = 70; seed < 76; ++seed) {
    const auto result = run_search(seed);
    EXPECT_GT(result.initial_cost, 0.0);
    EXPECT_LE(result.best_cost, result.initial_cost + 1e-9);
  }
}

TEST(GridIoProperty, RoutingCostSurvivesSerialization) {
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    const auto grid = property_grid(seed);
    std::stringstream buffer;
    ASSERT_TRUE(gen::write_grid(grid, buffer));
    const auto loaded = gen::read_grid(buffer);
    ASSERT_TRUE(loaded.has_value());
    steiner::Lin08Router router;
    EXPECT_NEAR(router.route(grid).cost, router.route(*loaded).cost, 1e-9);
  }
}

}  // namespace
}  // namespace oar
