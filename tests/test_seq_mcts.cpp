#include "mcts/seq_mcts.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"

namespace oar::mcts {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 44;
  return cfg;
}

HananGrid test_grid(std::uint64_t seed, std::int32_t pins = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = pins;
  spec.max_pins = pins;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  return gen::random_grid(spec, rng);
}

CombMctsConfig quick_config() {
  CombMctsConfig cfg;
  cfg.iterations_per_move = 24;
  return cfg;
}

TEST(SeqMcts, OneSamplePerExecutedMove) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(1, 5);
  SeqMcts search(selector, quick_config());
  const SeqMctsResult result = search.run(grid);
  EXPECT_EQ(result.samples.size(), std::size_t(result.stats.executed_moves));
  EXPECT_GE(result.samples.size(), 1u);
}

TEST(SeqMcts, SampleLabelsAreVisitDistributions) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(2, 5);
  SeqMcts search(selector, quick_config());
  const SeqMctsResult result = search.run(grid);
  for (const SeqSample& sample : result.samples) {
    double total = 0.0;
    for (float l : sample.label) {
      EXPECT_GE(l, 0.0f);
      EXPECT_LE(l, 1.0f);
      total += l;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(SeqMcts, SampleStatesGrowByOnePoint) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(3, 6);
  SeqMcts search(selector, quick_config());
  const SeqMctsResult result = search.run(grid);
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    EXPECT_EQ(result.samples[i].state_selected.size(), i);
  }
}

TEST(SeqMcts, SelectedVerticesAreValid) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(4, 5);
  SeqMcts search(selector, quick_config());
  const SeqMctsResult result = search.run(grid);
  EXPECT_LE(std::int64_t(result.selected.size()),
            std::int64_t(grid.pins().size()) - 2);
  for (Vertex v : result.selected) {
    EXPECT_FALSE(grid.is_pin(v));
    EXPECT_FALSE(grid.is_blocked(v));
  }
}

TEST(SeqMcts, UnorderedActionsNeedNotIncreaseInPriority) {
  // Sanity check of the *difference* from the combinatorial variant: the
  // sequential search may pick any valid vertex at any time, so runs exist
  // where priorities are not monotone.  (We only assert that the mechanism
  // allows it — monotone runs are possible too, so check across seeds.)
  rl::SteinerSelector selector(tiny_config());
  bool found_non_monotone = false;
  // 32 seeds: the routing core's canonical shortest-path tie-breaking means
  // small seed pools can coincidentally yield all-monotone runs.
  for (std::uint64_t seed = 1; seed <= 32 && !found_non_monotone; ++seed) {
    const HananGrid grid = test_grid(seed, 6);
    SeqMcts search(selector, quick_config());
    const SeqMctsResult result = search.run(grid);
    for (std::size_t i = 1; i < result.selected.size(); ++i) {
      if (grid.priority_of(result.selected[i]) <
          grid.priority_of(result.selected[i - 1])) {
        found_non_monotone = true;
      }
    }
  }
  // Not guaranteed, but overwhelmingly likely across 12 seeds; treat as a
  // soft signal rather than a hard failure if it ever flakes.
  EXPECT_TRUE(found_non_monotone);
}

TEST(SeqMcts, TwoPinLayoutYieldsNoSamples) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(5, 2);
  SeqMcts search(selector, quick_config());
  const SeqMctsResult result = search.run(grid);
  EXPECT_TRUE(result.samples.empty());
  EXPECT_TRUE(result.selected.empty());
}

TEST(SequentialSelect, UsesOneInferencePerPoint) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(6, 6);
  const auto result = sequential_select(selector, grid, /*stop_threshold=*/0.0);
  EXPECT_EQ(result.inferences, std::int32_t(grid.pins().size()) - 2);
  EXPECT_EQ(result.selected.size(), grid.pins().size() - 2);
}

TEST(SequentialSelect, StopThresholdTruncates) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(7, 6);
  const auto eager = sequential_select(selector, grid, 0.0);
  const auto picky = sequential_select(selector, grid, 0.999);
  EXPECT_LE(picky.selected.size(), eager.selected.size());
}

}  // namespace
}  // namespace oar::mcts
