file(REMOVE_RECURSE
  "liboar_gen.a"
)
