#pragma once

// Group normalization over a (C, D0, D1, D2) volume.
//
// The paper's residual blocks use per-feature normalization; since our
// modules run one sample at a time (batch statistics are unavailable),
// GroupNorm is the standard batch-size-independent substitute — with
// num_groups == num_channels it degenerates to InstanceNorm.  Learnable
// per-channel affine (gamma, beta).

#include "nn/module.hpp"

namespace oar::nn {

class GroupNorm : public Module {
 public:
  GroupNorm(std::int32_t num_channels, std::int32_t num_groups, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (N, C, D0, D1, D2): statistics stay per sample per group, so batched
  /// output matches the per-sample forward exactly.
  Tensor forward_batch(const Tensor& input) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  std::int32_t channels_, groups_;
  float eps_;
  Parameter gamma_;  // (C)
  Parameter beta_;   // (C)
  Tensor input_;
  Tensor normalized_;             // (x - mu) / sigma, cached for backward
  std::vector<float> inv_sigma_;  // per group
};

}  // namespace oar::nn
