#pragma once

// Liu'14-class baseline [16]: Steiner-point-based construction with
// geometric candidate reduction.  Our stand-in performs one greedy pass of
// explicit Steiner-point insertion: candidates are the Hanan "corner"
// projections of close terminal pairs, ranked by an obstacle-blind
// Manhattan gain estimate, and the top candidates are evaluated exactly
// (full OARMST rebuild); every candidate with positive exact gain is kept
// greedily.  One pass only — stronger than Lin08, weaker than the iterated
// Lin18 search.

#include "steiner/router_base.hpp"

namespace oar::steiner {

struct Liu14Config {
  /// Exact evaluations per pass (candidate budget).
  int max_evaluations = 24;
  /// Per terminal, how many nearest terminals contribute corner candidates.
  int neighbors_per_terminal = 3;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class Liu14Router : public Router {
 public:
  explicit Liu14Router(Liu14Config config = {}) : config_(config) {
    config_.validate();
  }

  std::string name() const override { return "liu14"; }
  route::OarmstResult route(const HananGrid& grid) override;

 private:
  Liu14Config config_;
};

}  // namespace oar::steiner
