#pragma once

// Per-channel int8 quantized inference for UNet3d (DESIGN.md §17).
//
// Scheme
//   * Activations: every conv input in this network is non-negative
//     (encoded features live in [0,1]; every other conv consumes a
//     post-ReLU tensor), so activations quantize to uint8 in [0, 127]
//     with a per-channel scale a[c]: q = clamp(rint(x * 127/max[c]), 0, 127).
//     The 7-bit ceiling is what makes the AVX2 maddubs path exact
//     (see simd.hpp).
//   * Weights: the per-input-channel activation scales are folded into
//     the next conv's weights before quantization (w~[oc,ic,·] =
//     a[ic] * w[oc,ic,·]), then each output channel is quantized
//     symmetrically to int8 with its own scale sw[oc].  A raw int32
//     accumulator therefore dequantizes with one fused multiply:
//     x = acc * sw[oc] + bias[oc].
//   * GroupNorm computes per-sample statistics at runtime, so it cannot
//     be folded; instead dequantize + GroupNorm (+ residual add) + ReLU +
//     requantize run fused in shared scalar code.  Confining every float
//     rounding decision to that shared code is what reduces cross-level
//     bit-exactness to the exact integer GEMM contract in simd.hpp.
//
// Incremental first layer (the NNUE accumulator idea)
//   Between consecutive critic calls only a handful of pin voxels change
//   (channel 0 flips 0 -> 1).  QuantizedUNet3d exposes the first-layer
//   state (quantized input + conv1/projection int32 accumulators) plus
//   per-tap delta columns so a caller that caches the base state can
//   patch O(pins * 27 * OC) accumulator entries and resume the forward,
//   bitwise identical to a from-scratch run.  The grid-keyed cache lives
//   in rl::SteinerSelector (nn stays hanan-free).

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/quant/simd.hpp"
#include "nn/unet3d.hpp"

namespace oar::nn {

/// Inference-path configuration (selector / eval-server / serving).
struct InferConfig {
  enum class Precision : std::int32_t { kFp32 = 0, kInt8 = 1 };

  Precision precision = Precision::kFp32;
  /// Accuracy gate (rl::evaluate_int8_gate): minimum top-k selection
  /// agreement with fp32 and maximum int8/fp32 route-cost ratio.
  double int8_min_agreement = 0.6;
  double int8_max_cost_ratio = 1.02;
  /// On gate failure, drop back to fp32 instead of erroring.
  bool int8_fallback_to_fp32 = true;

  void validate() const;
};

namespace quant {

inline std::int32_t ceil4(std::int32_t c) { return (c + 3) & ~3; }

/// Quantize a single non-negative activation with inverse scale 127/max.
inline std::uint8_t quantize_u8(float x, float inv_scale) {
  const float r = x * inv_scale;
  if (r <= 0.0f) return 0;
  if (r >= 127.0f) return 127;
  return std::uint8_t(std::int32_t(__builtin_rintf(r)));
}

inline float dequantize_u8(std::uint8_t q, float scale) {
  return float(q) * scale;
}

/// One packed conv: int8 weights in the simd.hpp layout, per-output-channel
/// dequant scale (input activation scales already folded in) and float bias.
struct QuantConv {
  std::int32_t in_c = 0;
  std::int32_t out_c = 0;
  std::int32_t kernel = 1;  // 1 or 3
  std::int32_t icp = 0;     // ceil4(in_c): activation channel stride
  std::vector<std::int8_t> w;
  std::vector<float> scale;  // [out_c]  x = acc * scale + bias
  std::vector<float> bias;   // [out_c]
};

struct QuantNorm {
  std::vector<float> gamma, beta;
  std::int32_t groups = 1;
  float eps = 1e-5f;
};

/// Residual block: conv1 -> GN+ReLU -> requant(mid) -> conv2 ->
/// GN + skip + ReLU -> requant(out).  Skip is either the 1x1 projection
/// accumulator or the identity input dequantized with in_scale.
struct QuantBlock {
  QuantConv conv1, conv2;
  QuantConv proj;  // valid iff has_proj
  bool has_proj = false;
  QuantNorm n1, n2;
  std::vector<float> in_scale;   // input point scales (identity-skip dequant)
  std::vector<float> mid_inv;    // [out_c] requant: q = rint(x * mid_inv)
  std::vector<float> out_inv;    // [out_c]
  std::vector<float> out_scale;  // [out_c] 1 / out_inv (next layer's input)
};

/// Frozen int8 weight pack + forward engine for one UNet3d.  Built by
/// QuantCalibrator::finish(); immutable after that except for grow-only
/// scratch.  Not thread-safe (one per selector, like InferenceScratch).
class QuantizedUNet3d {
 public:
  const UNet3dConfig& config() const { return cfg_; }
  /// Dispatch level the engine bound at construction.
  simd::Level level() const { return level_; }

  /// Full forward from a channel-major (C, H, V, M) float feature volume:
  /// quantize -> int8 U-Net -> float logits -> sigmoid into `out` (resized
  /// to H*V*M).  Bitwise identical across dispatch levels.
  void infer_fsp_from_features(const float* features, std::int32_t H,
                               std::int32_t V, std::int32_t M,
                               std::vector<double>& out);

  // --- first-layer primitives (incremental accumulator) -----------------
  std::int32_t input_icp() const { return ceil4(cfg_.in_channels); }
  std::int32_t first_layer_oc() const;
  bool first_layer_has_proj() const;

  /// Quantize the input volume into NHWC uint8 `q` (caller-sized
  /// H*V*M * input_icp(); padding lanes are zeroed).
  void quantize_input(const float* features, std::int32_t H, std::int32_t V,
                      std::int32_t M, std::uint8_t* q);

  /// Run the first-layer convolutions on a quantized input.  `accp` must
  /// be non-null iff first_layer_has_proj().
  void first_layer_acc(const std::uint8_t* q, std::int32_t H, std::int32_t V,
                       std::int32_t M, std::int32_t* acc1,
                       std::int32_t* accp);

  /// Resume the forward from (possibly patched) first-layer state.  A null
  /// acc1 (and accp) is computed from `q` on the fly.  Bitwise identical
  /// to infer_fsp_from_features on the same input.
  void infer_from_first_layer(const std::uint8_t* q, const std::int32_t* acc1,
                              const std::int32_t* accp, std::int32_t H,
                              std::int32_t V, std::int32_t M,
                              std::vector<double>& out);

  /// Quantized value of a 1.0 pin activation on channel `c` (what a pin
  /// flip writes into the input volume).
  std::uint8_t quantized_one(std::int32_t c) const;
  /// Accumulator delta of one pin flip (0 -> quantized_one(0)) for conv1:
  /// [27 * first_layer_oc()], indexed [tap * OC + oc] — the output voxel
  /// for tap (k0,k1,k2) is (pin + 1 - k) per axis.
  const std::vector<std::int32_t>& pin_delta() const { return pin_dcol_; }
  /// Same for the first-layer 1x1 projection: [first_layer_oc()].
  const std::vector<std::int32_t>& pin_delta_proj() const {
    return pin_dcol_proj_;
  }

  /// Scratch reallocation count (tests assert it stops growing once warm).
  std::uint64_t scratch_grow_events() const { return grow_events_; }

 private:
  friend class QuantCalibrator;
  QuantizedUNet3d() = default;

  void run_block(const QuantBlock& b, const std::uint8_t* in, std::int32_t d0,
                 std::int32_t d1, std::int32_t d2, const std::int32_t* acc1_pre,
                 const std::int32_t* accp_pre, std::uint8_t* out);
  void requant_norm(const std::int32_t* acc, const QuantConv& conv,
                    const QuantNorm& n, const float* skipf, std::int64_t S,
                    const std::vector<float>& inv_out, std::uint8_t* out);
  template <typename T>
  T* grown(std::vector<T>& v, std::size_t n);

  UNet3dConfig cfg_;
  simd::Level level_ = simd::Level::kScalar;
  simd::Kernels kernels_{nullptr, nullptr};

  std::vector<float> in_scale_, in_inv_;  // [in_channels]
  std::vector<QuantBlock> enc_, dec_;     // dec_ deepest-first
  QuantBlock bottleneck_;
  QuantConv head_;
  std::uint8_t q_pin_ = 0;
  std::vector<std::int32_t> pin_dcol_, pin_dcol_proj_;

  // Grow-only scratch (zero allocations once warm).
  std::vector<std::int32_t> acc_a_, acc_b_, acc_p_;
  std::vector<std::uint8_t> qin_, mid_, cat_, bott_, ping_, pong_;
  std::vector<std::vector<std::uint8_t>> skip_, down_;
  std::vector<float> skipf_, logits_, mu_c_, inv_c_, coef_rep_;
  std::vector<double> sum_, sumsq_;
  std::uint64_t grow_events_ = 0;
};

/// Records per-channel activation maxima over representative inputs by
/// replaying the fp32 inference path, then emits the int8 pack.
class QuantCalibrator {
 public:
  /// `net` must be in inference mode; only read, never mutated.
  explicit QuantCalibrator(const UNet3d& net);
  ~QuantCalibrator();

  /// Observe one channel-major (C, H, V, M) feature volume.
  void observe(const float* features, std::int32_t H, std::int32_t V,
               std::int32_t M);
  std::int64_t samples() const { return samples_; }

  /// Fold scales, quantize weights, bind the dispatch kernels.  Throws
  /// std::logic_error when no samples were observed.
  std::unique_ptr<QuantizedUNet3d> finish() const;

 private:
  struct BlockMax {
    std::vector<float> mid, out;
  };
  void observe_block(const ResidualBlock3d& blk, BlockMax& m, const float* in,
                     std::int32_t d0, std::int32_t d1, std::int32_t d2,
                     std::vector<float>& out);

  const UNet3d& net_;
  std::vector<float> in_max_;
  std::vector<BlockMax> enc_max_, dec_max_;
  BlockMax bot_max_;
  std::int64_t samples_ = 0;

  // fp32 replay buffers (grow-only).
  mutable InferenceScratch scratch_;
  std::vector<float> t1_, t2_, proj_, cat_, up_, cur_;
  std::vector<std::vector<float>> skip_;
};

// --- oar_nn_quant_* metrics hooks (usable from rl/mcts/serve) -----------
void note_fp32_forward();
void note_int8_gate_failure();
void note_accumulator_hit();
void note_accumulator_rebuild();

}  // namespace quant
}  // namespace oar::nn
