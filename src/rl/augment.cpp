#include "rl/augment.hpp"

#include <algorithm>

namespace oar::rl {

std::array<AugmentSpec, 16> all_augmentations() {
  std::array<AugmentSpec, 16> specs;
  std::size_t i = 0;
  for (std::int32_t rot = 0; rot < 4; ++rot) {
    for (int rv = 0; rv < 2; ++rv) {
      for (int rm = 0; rm < 2; ++rm) {
        specs[i++] = AugmentSpec{rot, rv == 1, rm == 1};
      }
    }
  }
  return specs;
}

Vertex transform_vertex(const HananGrid& grid, Vertex v, const AugmentSpec& spec) {
  hanan::Cell c = grid.cell(v);
  std::int32_t H = grid.h_dim(), V = grid.v_dim();
  for (std::int32_t r = 0; r < spec.rotation; ++r) {
    // Quarter turn in the H-V plane: (h, v) -> (v, H-1-h), dims swap.
    const std::int32_t nh = c.v;
    const std::int32_t nv = H - 1 - c.h;
    c.h = nh;
    c.v = nv;
    std::swap(H, V);
  }
  if (spec.reflect_v) c.v = V - 1 - c.v;
  if (spec.reflect_m) c.m = grid.m_dim() - 1 - c.m;
  // Flat index in the transformed grid (dims H x V x M after rotation).
  return Vertex((std::int64_t(c.m) * V + c.v) * H + c.h);
}

HananGrid transform_grid(const HananGrid& grid, const AugmentSpec& spec) {
  // Track the step-cost arrays through the same transform chain.
  std::vector<double> x_step(grid.h_dim() > 1 ? std::size_t(grid.h_dim() - 1) : 0);
  std::vector<double> y_step(grid.v_dim() > 1 ? std::size_t(grid.v_dim() - 1) : 0);
  for (std::size_t i = 0; i < x_step.size(); ++i) x_step[i] = grid.x_step(std::int32_t(i));
  for (std::size_t i = 0; i < y_step.size(); ++i) y_step[i] = grid.y_step(std::int32_t(i));

  for (std::int32_t r = 0; r < spec.rotation; ++r) {
    // (h, v) -> (v, H-1-h): new x steps are the old y steps; new y steps
    // are the old x steps reversed.
    std::vector<double> nx = y_step;
    std::vector<double> ny = x_step;
    std::reverse(ny.begin(), ny.end());
    x_step = std::move(nx);
    y_step = std::move(ny);
  }
  if (spec.reflect_v) std::reverse(y_step.begin(), y_step.end());

  const std::int32_t H = std::int32_t(x_step.size()) + 1;
  const std::int32_t V = std::int32_t(y_step.size()) + 1;
  const std::int32_t M = grid.m_dim();

  std::vector<std::uint8_t> blocked(std::size_t(H) * V * M, 0);
  std::vector<Vertex> pins;
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    const Vertex nv = transform_vertex(grid, v, spec);
    if (grid.is_blocked(v)) blocked[std::size_t(nv)] = 1;
    if (grid.is_pin(v)) pins.push_back(nv);
  }
  return HananGrid(H, V, M, std::move(x_step), std::move(y_step), grid.via_cost(),
                   std::move(blocked), std::move(pins));
}

std::vector<float> transform_label(const HananGrid& grid,
                                   const std::vector<float>& label,
                                   const AugmentSpec& spec) {
  std::int32_t H = grid.h_dim(), V = grid.v_dim();
  for (std::int32_t r = 0; r < spec.rotation; ++r) std::swap(H, V);
  const std::int32_t M = grid.m_dim();

  std::vector<float> out(label.size(), 0.0f);
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    const Vertex nv = transform_vertex(grid, v, spec);
    // Priority of nv in the transformed grid.
    const std::int32_t nh = nv % H;
    const std::int32_t rest = nv / H;
    const std::int32_t nvv = rest % V;
    const std::int32_t nm = rest / V;
    const auto new_priority = std::size_t((std::int64_t(nh) * V + nvv) * M + nm);
    out[new_priority] = label[std::size_t(grid.priority_of(v))];
  }
  return out;
}

}  // namespace oar::rl
