#pragma once

// Minimal leveled logger.  Kept deliberately simple: benches and examples
// print their own tables; the logger is for diagnostics and progress lines.

#include <sstream>
#include <string>

namespace oar::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line to stderr: "[LEVEL] message".
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::kError, args...); }

}  // namespace oar::util
