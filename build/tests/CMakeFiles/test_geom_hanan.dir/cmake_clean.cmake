file(REMOVE_RECURSE
  "CMakeFiles/test_geom_hanan.dir/test_features.cpp.o"
  "CMakeFiles/test_geom_hanan.dir/test_features.cpp.o.d"
  "CMakeFiles/test_geom_hanan.dir/test_geom.cpp.o"
  "CMakeFiles/test_geom_hanan.dir/test_geom.cpp.o.d"
  "CMakeFiles/test_geom_hanan.dir/test_hanan.cpp.o"
  "CMakeFiles/test_geom_hanan.dir/test_hanan.cpp.o.d"
  "test_geom_hanan"
  "test_geom_hanan.pdb"
  "test_geom_hanan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_hanan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
