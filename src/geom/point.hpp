#pragma once

// Basic integer geometry shared by layouts and routers.

#include <compare>
#include <cstdint>
#include <ostream>

namespace oar::geom {

/// 2D integer point (layout coordinates).
struct Point2 {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend auto operator<=>(const Point2&, const Point2&) = default;
};

/// 3D integer point: layout coordinates plus routing layer.
struct Point3 {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t layer = 0;

  friend auto operator<=>(const Point3&, const Point3&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Point2& p) {
  return os << "(" << p.x << "," << p.y << ")";
}
inline std::ostream& operator<<(std::ostream& os, const Point3& p) {
  return os << "(" << p.x << "," << p.y << ",L" << p.layer << ")";
}

/// Manhattan distance in the plane.
inline std::int64_t manhattan(const Point2& a, const Point2& b) {
  return std::int64_t(a.x > b.x ? a.x - b.x : b.x - a.x) +
         std::int64_t(a.y > b.y ? a.y - b.y : b.y - a.y);
}

}  // namespace oar::geom
