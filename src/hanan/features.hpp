#pragma once

// Input feature encoding of a Hanan-grid layout (paper Fig. 3).
//
// Every vertex gets 7 channels:
//   0: is a pin (previously selected Steiner points are passed in as extra
//      pins by the MCTS, matching the paper's "treated as normal pins")
//   1: is an obstacle
//   2: routing cost to the vertex immediately to the right (+x)
//   3: routing cost to the left (-x)
//   4: routing cost upstairs (+y)
//   5: routing cost downstairs (-y)
//   6: via cost
// The five cost channels are normalized by the maximum cost value of the
// layout so they lie in [0, 1]; a direction with no usable edge encodes 0.

#include <cstdint>
#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::hanan {

inline constexpr std::int32_t kNumFeatureChannels = 7;

/// Dense C x H x V x M float volume, m fastest-varying:
/// data[((c*H + h)*V + v)*M + m].
struct FeatureVolume {
  std::int32_t c = 0, h = 0, v = 0, m = 0;
  std::vector<float> data;

  std::size_t offset(std::int32_t ci, std::int32_t hi, std::int32_t vi,
                     std::int32_t mi) const {
    return std::size_t(((std::int64_t(ci) * h + hi) * v + vi) * m + mi);
  }
  float at(std::int32_t ci, std::int32_t hi, std::int32_t vi, std::int32_t mi) const {
    return data[offset(ci, hi, vi, mi)];
  }
  float& at(std::int32_t ci, std::int32_t hi, std::int32_t vi, std::int32_t mi) {
    return data[offset(ci, hi, vi, mi)];
  }
};

/// Encode `grid` into the 7-channel feature volume.  `extra_pins` are
/// additional vertices (selected Steiner points) encoded as pins.
FeatureVolume encode_features(const HananGrid& grid,
                              const std::vector<Vertex>& extra_pins = {});

/// Encode directly into caller-provided storage of kNumFeatureChannels *
/// H * V * M floats (zero-filled first).  Lets the selector and the
/// serving layer write features straight into a network input tensor with
/// no intermediate FeatureVolume copy.
void encode_features_into(const HananGrid& grid,
                          const std::vector<Vertex>& extra_pins, float* out);

/// Incremental feature encoding for the MCTS hot loop.
///
/// Within one episode every state shares the same grid and differs only in
/// its selected Steiner points, which touch channel 0 (pins) alone — yet
/// the selector used to re-run the full 7-channel encode_features per
/// state.  FeatureCache keeps the base (no extra pins) volume for the last
/// grid seen, keyed on (grid address, HananGrid::revision()): the revision
/// stamp comes from a global counter bumped on construction and every
/// topology mutation, so two different grids can never collide on the key
/// even if one is destroyed and another reuses its address.  encode_into
/// copies the cached base and patches the extra-pin voxels into the copy,
/// which leaves the cache itself clean by construction (equivalent to
/// patching and un-patching in place, without the hazard).
class FeatureCache {
 public:
  FeatureCache() = default;
  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;
  FeatureCache(FeatureCache&&) = default;
  FeatureCache& operator=(FeatureCache&&) = default;

  /// Equivalent to encode_features_into(grid, extra_pins, out), but only
  /// the extra-pin deltas are recomputed while (address, revision) match
  /// the cached base volume.
  void encode_into(const HananGrid& grid, const std::vector<Vertex>& extra_pins,
                   float* out);

  /// Full base re-encodes performed so far (diagnostic/test hook: one per
  /// distinct (grid, revision) actually seen).
  std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  const HananGrid* grid_ = nullptr;
  std::uint64_t revision_ = 0;
  FeatureVolume base_;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace oar::hanan
