#include "nn/unet3d.hpp"

#include <cmath>

#include "util/validate.hpp"

namespace oar::nn {

void UNet3dConfig::validate() const {
  util::check_field(in_channels >= 1, "UNet3dConfig", "in_channels", "be >= 1",
                    in_channels);
  util::check_field(base_channels >= 1, "UNet3dConfig", "base_channels",
                    "be >= 1", base_channels);
  util::check_field(depth >= 1, "UNet3dConfig", "depth", "be >= 1", depth);
  util::check_field(std::isfinite(head_bias_init), "UNet3dConfig",
                    "head_bias_init", "be finite", head_bias_init);
}

namespace {

/// Concatenate two (C, D0, D1, D2) tensors along channels.
Tensor concat_channels(const Tensor& a, const Tensor& b) {
  assert(a.dim() == 4 && b.dim() == 4);
  assert(a.shape(1) == b.shape(1) && a.shape(2) == b.shape(2) && a.shape(3) == b.shape(3));
  Tensor out({a.shape(0) + b.shape(0), a.shape(1), a.shape(2), a.shape(3)});
  std::copy(a.data(), a.data() + a.numel(), out.data());
  std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
  return out;
}

/// Concatenate two (N, C, D0, D1, D2) tensors along channels.
Tensor concat_channels_batch(const Tensor& a, const Tensor& b) {
  assert(a.dim() == 5 && b.dim() == 5);
  assert(a.shape(0) == b.shape(0) && a.shape(2) == b.shape(2) &&
         a.shape(3) == b.shape(3) && a.shape(4) == b.shape(4));
  Tensor out({a.shape(0), a.shape(1) + b.shape(1), a.shape(2), a.shape(3), a.shape(4)});
  const std::int64_t a_sample = a.numel() / a.shape(0);
  const std::int64_t b_sample = b.numel() / b.shape(0);
  for (std::int32_t n = 0; n < a.shape(0); ++n) {
    float* dst = out.data() + n * (a_sample + b_sample);
    std::copy(a.data() + n * a_sample, a.data() + (n + 1) * a_sample, dst);
    std::copy(b.data() + n * b_sample, b.data() + (n + 1) * b_sample, dst + a_sample);
  }
  return out;
}

/// Split gradient of a channel concat back into the two parts.
std::pair<Tensor, Tensor> split_channels(const Tensor& grad, std::int32_t c_first,
                                         std::int32_t c_second) {
  assert(grad.shape(0) == c_first + c_second);
  Tensor ga({c_first, grad.shape(1), grad.shape(2), grad.shape(3)});
  Tensor gb({c_second, grad.shape(1), grad.shape(2), grad.shape(3)});
  std::copy(grad.data(), grad.data() + ga.numel(), ga.data());
  std::copy(grad.data() + ga.numel(), grad.data() + grad.numel(), gb.data());
  return {std::move(ga), std::move(gb)};
}

}  // namespace

UNet3d::UNet3d(UNet3dConfig config)
    : config_(config), scratch_(std::make_unique<InferenceScratch>()) {
  config_.validate();
  util::Rng rng(config_.seed);
  std::int32_t in_c = config_.in_channels;
  for (std::int32_t level = 0; level < config_.depth; ++level) {
    const std::int32_t out_c = config_.base_channels << level;
    encoders_.push_back(std::make_unique<ResidualBlock3d>(in_c, out_c, rng));
    pools_.emplace_back();
    in_c = out_c;
  }
  const std::int32_t bottom_c = config_.base_channels << config_.depth;
  bottleneck_ = std::make_unique<ResidualBlock3d>(in_c, bottom_c, rng);

  std::int32_t up_c = bottom_c;
  for (std::int32_t level = config_.depth - 1; level >= 0; --level) {
    const std::int32_t skip_c = config_.base_channels << level;
    upsamples_.emplace_back();
    decoders_.push_back(std::make_unique<ResidualBlock3d>(up_c + skip_c, skip_c, rng));
    up_c = skip_c;
  }
  head_ = std::make_unique<Conv3d>(up_c, 1, 1, rng);
  head_->bias().value.fill(config_.head_bias_init);
}

void UNet3d::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& e : encoders_) e->collect_parameters(out);
  bottleneck_->collect_parameters(out);
  for (auto& d : decoders_) d->collect_parameters(out);
  head_->collect_parameters(out);
}

void UNet3d::set_training(bool training) {
  Module::set_training(training);
  for (auto& e : encoders_) e->set_training(training);
  for (auto& p : pools_) p.set_training(training);
  bottleneck_->set_training(training);
  for (auto& u : upsamples_) u.set_training(training);
  for (auto& d : decoders_) d->set_training(training);
  head_->set_training(training);
}

Tensor UNet3d::forward(const Tensor& input) {
  assert(input.dim() == 4 && input.shape(0) == config_.in_channels);
  if (!training()) {
    scratch_->rewind();
    return infer(input);  // copies the logits out of the arena
  }
  skip_shapes_.clear();
  skip_channels_.clear();

  Tensor x = input;
  std::vector<Tensor> skips;
  for (std::int32_t level = 0; level < config_.depth; ++level) {
    x = encoders_[std::size_t(level)]->forward(x);
    skips.push_back(x);
    skip_shapes_.push_back(x.shape());
    skip_channels_.push_back(x.shape(0));
    x = pools_[std::size_t(level)].forward(x);
  }
  x = bottleneck_->forward(x);

  for (std::int32_t i = 0; i < config_.depth; ++i) {
    const std::int32_t level = config_.depth - 1 - i;
    const auto& skip = skips[std::size_t(level)];
    upsamples_[std::size_t(i)].set_target(skip.shape(1), skip.shape(2), skip.shape(3));
    Tensor up = upsamples_[std::size_t(i)].forward(x);
    x = decoders_[std::size_t(i)]->forward(concat_channels(up, skip));
  }
  return head_->forward(x);
}

const Tensor& UNet3d::infer(const Tensor& input) {
  assert(input.dim() == 4 && input.shape(0) == config_.in_channels);
  InferenceScratch& arena = *scratch_;
  infer_skips_.clear();

  const Tensor* x = &input;
  for (std::int32_t level = 0; level < config_.depth; ++level) {
    const Tensor& enc = encoders_[std::size_t(level)]->infer(*x, arena);
    infer_skips_.push_back(&enc);
    Tensor& pooled = arena.push({enc.shape(0), MaxPool3d::out_dim(enc.shape(1)),
                                 MaxPool3d::out_dim(enc.shape(2)),
                                 MaxPool3d::out_dim(enc.shape(3))});
    pools_[std::size_t(level)].infer_into(enc.data(), enc.shape(0), enc.shape(1),
                                          enc.shape(2), enc.shape(3),
                                          pooled.data());
    x = &pooled;
  }
  x = &bottleneck_->infer(*x, arena);

  for (std::int32_t i = 0; i < config_.depth; ++i) {
    const std::int32_t level = config_.depth - 1 - i;
    const Tensor& skip = *infer_skips_[std::size_t(level)];
    const std::int32_t up_c = x->shape(0);
    const std::int64_t spatial =
        std::int64_t(skip.shape(1)) * skip.shape(2) * skip.shape(3);
    // The upsample writes the first up_c channels of the concat buffer and
    // the skip is copied in behind it — no separate concatenation pass.
    Tensor& cat = arena.push(
        {up_c + skip.shape(0), skip.shape(1), skip.shape(2), skip.shape(3)});
    upsamples_[std::size_t(i)].set_target(skip.shape(1), skip.shape(2),
                                          skip.shape(3));
    upsamples_[std::size_t(i)].infer_into(x->data(), up_c, x->shape(1),
                                          x->shape(2), x->shape(3), cat.data());
    std::copy(skip.data(), skip.data() + skip.numel(),
              cat.data() + std::int64_t(up_c) * spatial);
    x = &decoders_[std::size_t(i)]->infer(cat, arena);
  }

  Tensor& logits = arena.push({1, x->shape(1), x->shape(2), x->shape(3)});
  head_->infer_into(x->data(), x->shape(1), x->shape(2), x->shape(3), arena,
                    logits.data());
  return logits;
}

Tensor UNet3d::forward_batch(const Tensor& input) {
  assert(input.dim() == 5 && input.shape(1) == config_.in_channels);

  Tensor x = input;
  std::vector<Tensor> skips;
  for (std::int32_t level = 0; level < config_.depth; ++level) {
    x = encoders_[std::size_t(level)]->forward_batch(x);
    skips.push_back(x);
    x = pools_[std::size_t(level)].forward_batch(x);
  }
  x = bottleneck_->forward_batch(x);

  for (std::int32_t i = 0; i < config_.depth; ++i) {
    const std::int32_t level = config_.depth - 1 - i;
    const auto& skip = skips[std::size_t(level)];
    upsamples_[std::size_t(i)].set_target(skip.shape(2), skip.shape(3), skip.shape(4));
    Tensor up = upsamples_[std::size_t(i)].forward_batch(x);
    x = decoders_[std::size_t(i)]->forward_batch(concat_channels_batch(up, skip));
  }
  return head_->forward_batch(x);
}

Tensor UNet3d::backward(const Tensor& grad_output) {
  assert(training());  // inference-mode forward retains nothing
  Tensor grad = head_->backward(grad_output);

  // Skip-connection gradients accumulate here, indexed by encoder level.
  std::vector<Tensor> skip_grads(std::size_t(config_.depth));

  for (std::int32_t i = config_.depth - 1; i >= 0; --i) {
    const std::int32_t level = config_.depth - 1 - i;
    Tensor grad_cat = decoders_[std::size_t(i)]->backward(grad);
    const std::int32_t skip_c = skip_channels_[std::size_t(level)];
    const std::int32_t up_c = grad_cat.shape(0) - skip_c;
    auto [g_up, g_skip] = split_channels(grad_cat, up_c, skip_c);
    skip_grads[std::size_t(level)] = std::move(g_skip);
    grad = upsamples_[std::size_t(i)].backward(g_up);
  }

  grad = bottleneck_->backward(grad);

  for (std::int32_t level = config_.depth - 1; level >= 0; --level) {
    Tensor g = pools_[std::size_t(level)].backward(grad);
    g += skip_grads[std::size_t(level)];
    grad = encoders_[std::size_t(level)]->backward(g);
  }
  return grad;
}

}  // namespace oar::nn
