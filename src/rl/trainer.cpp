#include "rl/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "experience/record.hpp"
#include "mcts/parallel.hpp"
#include "nn/loss.hpp"
#include "route/oarmst.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rl/augment.hpp"
#include "rl/evaluate.hpp"
#include "steiner/router_base.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace oar::rl {

namespace {

struct TrainObs {
  obs::Counter& stages;
  obs::Counter& samples;
  obs::Counter& fit_batches;
  obs::Counter& fit_samples;
  obs::Gauge& stage_loss;
  obs::Gauge& samples_per_second;
  obs::Histogram& checkpoint_seconds;
};

TrainObs& train_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static TrainObs o{
      reg.counter("oar_rl_stages_total", "Training stages completed"),
      reg.counter("oar_rl_samples_total",
                  "MCTS-labelled raw samples generated (before augmentation)"),
      reg.counter("oar_rl_fit_batches_total",
                  "Gradient batches accumulated by ParallelFitter"),
      reg.counter("oar_rl_fit_samples_total",
                  "Samples backpropagated by ParallelFitter"),
      reg.gauge("oar_rl_stage_loss", "Mean fit loss of the last stage"),
      reg.gauge("oar_rl_samples_per_second",
                "Raw-sample generation throughput of the last stage"),
      reg.histogram("oar_rl_checkpoint_seconds", obs::latency_buckets(),
                    "Wall time per training-checkpoint write"),
  };
  return o;
}

}  // namespace

void TrainConfig::validate() const {
  util::check_field(!sizes.empty(), "TrainConfig", "sizes", "be non-empty",
                    sizes.size());
  for (const LayoutSizeSpec& s : sizes) {
    util::check_field(s.h >= 2 && s.v >= 2 && s.m >= 1, "TrainConfig", "sizes",
                      "contain only specs with h, v >= 2 and m >= 1",
                      std::to_string(s.h) + "x" + std::to_string(s.v) + "x" +
                          std::to_string(s.m));
  }
  util::check_field(layouts_per_size >= 1, "TrainConfig", "layouts_per_size",
                    "be >= 1", layouts_per_size);
  util::check_field(stages >= 1, "TrainConfig", "stages", "be >= 1", stages);
  util::check_field(epochs_per_stage >= 1, "TrainConfig", "epochs_per_stage",
                    "be >= 1", epochs_per_stage);
  util::check_field(batch_size >= 1, "TrainConfig", "batch_size", "be >= 1",
                    batch_size);
  util::check_field(lr > 0.0 && std::isfinite(lr), "TrainConfig", "lr",
                    "be finite and positive", lr);
  util::check_field(grad_clip > 0.0, "TrainConfig", "grad_clip", "be positive",
                    grad_clip);
  util::check_field(augment_count >= 1 && augment_count <= 16, "TrainConfig",
                    "augment_count", "be in [1, 16]", augment_count);
  util::check_field(curriculum_stages >= 0, "TrainConfig", "curriculum_stages",
                    "be >= 0", curriculum_stages);
  util::check_field(min_pins >= 2, "TrainConfig", "min_pins", "be >= 2",
                    min_pins);
  util::check_field(max_pins >= min_pins, "TrainConfig", "max_pins",
                    "be >= min_pins", max_pins);
  util::check_field(obstacle_density >= 0.0 && obstacle_density < 1.0,
                    "TrainConfig", "obstacle_density", "be in [0, 1)",
                    obstacle_density);
  util::check_field(threads >= 0, "TrainConfig", "threads",
                    "be >= 0 (0 = hardware)", threads);
  util::check_field(fit_workers >= 0, "TrainConfig", "fit_workers",
                    "be >= 0 (0 = inherit threads)", fit_workers);
  util::check_field(int8_calibration_layouts >= 1, "TrainConfig",
                    "int8_calibration_layouts", "be >= 1",
                    int8_calibration_layouts);
  mcts.validate();
}

void FitOptions::validate() const {
  util::check_field(epochs >= 1, "FitOptions", "epochs", "be >= 1", epochs);
  util::check_field(batch_size >= 1, "FitOptions", "batch_size", "be >= 1",
                    batch_size);
  util::check_field(grad_clip > 0.0, "FitOptions", "grad_clip", "be positive",
                    grad_clip);
  util::check_field(workers >= 0, "FitOptions", "workers",
                    "be >= 0 (<= 1 runs serially)", workers);
}

gen::RandomGridSpec training_spec(const LayoutSizeSpec& size, double obstacle_density,
                                  std::int32_t min_pins, std::int32_t max_pins) {
  gen::RandomGridSpec spec;
  spec.h = size.h;
  spec.v = size.v;
  spec.m = size.m;
  spec.min_pins = min_pins;
  spec.max_pins = max_pins;
  // Paper (16x16x4): 32..64 obstacles of 3..4 cells ~= 2.7%..6% blocked.
  // Convert the requested density into a 1x3 / 1x4 run count.
  const double cells = double(size.h) * size.v * size.m;
  const double mean_len = 3.5;
  const auto target = std::int32_t(std::lround(obstacle_density * cells / mean_len));
  spec.min_obstacles = std::max(1, target / 2);
  spec.max_obstacles = std::max(spec.min_obstacles, target);
  return spec;
}

ParallelFitter::ParallelFitter(SteinerSelector& master, std::int32_t workers,
                               util::ThreadPool* pool)
    : master_(master), pool_(pool), workers_(std::max<std::int32_t>(1, workers)) {
  assert(workers_ == 1 || pool_ != nullptr);
  master_params_ = master_.net().parameters();
  // All compute runs on replicas (the master only receives the reduced
  // gradient), so the master's own gradient accumulators survive the
  // per-sample zero_grad the snapshot path needs.
  for (std::int32_t w = 0; w < workers_; ++w) {
    auto replica = std::make_unique<SteinerSelector>(master_.config());
    replica->net().set_training(true);
    replica_params_.push_back(replica->net().parameters());
    replicas_.push_back(std::move(replica));
  }
}

void ParallelFitter::sync_replicas() {
  if (!weights_dirty_) return;
  for (auto& replica : replicas_) replica->copy_weights_from(master_);
  weights_dirty_ = false;
}

void ParallelFitter::run_indexed(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) {
  if (pool_ != nullptr && count > 1) {
    pool_->parallel_for(count, fn);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

double ParallelFitter::backprop_sample(SteinerSelector& selector,
                                       const TrainingSample& sample,
                                       float inv_batch) {
  const nn::Tensor input = SteinerSelector::encode(sample.grid, sample.extra_pins);
  const nn::Tensor logits = selector.net().forward(input);

  nn::Tensor label({1, sample.grid.h_dim(), sample.grid.v_dim(),
                    sample.grid.m_dim()});
  nn::Tensor mask(label.shape());
  std::copy(sample.label.begin(), sample.label.end(), label.data());
  std::copy(sample.mask.begin(), sample.mask.end(), mask.data());

  nn::Tensor grad_logits;
  const double loss = nn::bce_with_logits(logits, label, grad_logits, &mask);
  grad_logits *= inv_batch;
  selector.net().backward(grad_logits);
  return loss;
}

double ParallelFitter::accumulate_batch(const Dataset& dataset,
                                        const std::vector<std::size_t>& batch) {
  if (batch.empty()) return 0.0;
  const std::size_t n = batch.size();
  train_obs().fit_batches.inc();
  train_obs().fit_samples.add(n);
  const float inv_batch = 1.0f / float(n);
  sync_replicas();
  if (sample_grads_.size() < n) sample_grads_.resize(n);
  if (sample_loss_.size() < n) sample_loss_.resize(n);

  // Contiguous shards, first `extra` one sample larger.
  const std::size_t shards = std::min<std::size_t>(std::size_t(workers_), n);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::vector<std::size_t> bounds(shards + 1, 0);
  for (std::size_t w = 0; w < shards; ++w) {
    bounds[w + 1] = bounds[w] + base + (w < extra ? 1 : 0);
  }

  run_indexed(shards, [&](std::size_t w) {
    SteinerSelector& selector = *replicas_[w];
    const std::vector<nn::Parameter*>& params = replica_params_[w];
    for (std::size_t k = bounds[w]; k < bounds[w + 1]; ++k) {
      selector.net().zero_grad();
      sample_loss_[k] = backprop_sample(selector, dataset.sample(batch[k]),
                                        inv_batch);
      sample_grads_[k].resize(params.size());
      for (std::size_t j = 0; j < params.size(); ++j) {
        sample_grads_[k][j] = params[j]->grad;
      }
    }
  });

  // Binary-tree reduction over batch positions: at stride s, position i
  // absorbs position i+s for i = 0, 2s, 4s, ...  The addition order
  // depends only on n — never on the shard layout — so the accumulated
  // gradient is bitwise identical for every worker count.
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    std::vector<std::size_t> dsts;
    for (std::size_t i = 0; i + stride < n; i += 2 * stride) dsts.push_back(i);
    run_indexed(dsts.size(), [&](std::size_t d) {
      std::vector<nn::Tensor>& dst = sample_grads_[dsts[d]];
      const std::vector<nn::Tensor>& src = sample_grads_[dsts[d] + stride];
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
    });
  }
  for (std::size_t j = 0; j < master_params_.size(); ++j) {
    master_params_[j]->grad += sample_grads_[0][j];
  }

  double loss = 0.0;
  for (std::size_t k = 0; k < n; ++k) loss += sample_loss_[k];
  return loss;
}

double fit_dataset(SteinerSelector& selector, nn::Adam& optimizer,
                   const Dataset& dataset, const FitOptions& options,
                   util::Rng& rng) {
  options.validate();
  if (dataset.empty()) return 0.0;
  const std::int32_t workers = std::max<std::int32_t>(1, options.workers);
  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = options.pool;
  if (workers > 1 && pool == nullptr) {
    local_pool = std::make_unique<util::ThreadPool>(std::size_t(workers));
    pool = local_pool.get();
  }
  selector.net().set_training(true);
  ParallelFitter fitter(selector, workers, workers > 1 ? pool : nullptr);
  double last_epoch_loss = 0.0;
  for (std::int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (const auto& batch : dataset.epoch_batches(options.batch_size, rng)) {
      optimizer.zero_grad();
      const double batch_loss = fitter.accumulate_batch(dataset, batch);
      optimizer.clip_grad_norm(options.grad_clip);
      optimizer.step();
      fitter.notify_weights_changed();
      epoch_loss += batch_loss / double(batch.size());
      ++batches;
    }
    last_epoch_loss = batches == 0 ? 0.0 : epoch_loss / double(batches);
  }
  // Hand the selector back in its default inference mode so callers (MCTS
  // sample generation, evaluation, serving) land on the fast path again.
  selector.net().set_training(false);
  return last_epoch_loss;
}

double fit_dataset(SteinerSelector& selector, nn::Adam& optimizer,
                   const Dataset& dataset, std::int32_t epochs,
                   std::size_t batch_size, double grad_clip, util::Rng& rng) {
  FitOptions options;
  options.epochs = epochs;
  options.batch_size = batch_size;
  options.grad_clip = grad_clip;
  options.workers = 1;
  return fit_dataset(selector, optimizer, dataset, options, rng);
}

double dataset_loss(SteinerSelector& selector, const Dataset& dataset,
                    std::size_t batch_size) {
  if (dataset.empty()) return 0.0;
  double total = 0.0;
  std::size_t batches = 0;
  for (const auto& batch : dataset.ordered_batches(batch_size)) {
    const TrainingSample& first = dataset.sample(batch[0]);
    const nn::Tensor input0 = SteinerSelector::encode(first.grid, first.extra_pins);
    std::vector<std::int32_t> stacked_shape{std::int32_t(batch.size())};
    stacked_shape.insert(stacked_shape.end(), input0.shape().begin(),
                         input0.shape().end());
    nn::Tensor stacked(std::move(stacked_shape));
    const std::int64_t in_stride = input0.numel();
    std::copy(input0.data(), input0.data() + in_stride, stacked.data());
    for (std::size_t i = 1; i < batch.size(); ++i) {
      const TrainingSample& sample = dataset.sample(batch[i]);
      // Stacking assumes one layout size per batch (Dataset buckets by
      // size); a mixed batch would silently overrun in_stride.
      if (sample.grid.h_dim() != first.grid.h_dim() ||
          sample.grid.v_dim() != first.grid.v_dim() ||
          sample.grid.m_dim() != first.grid.m_dim()) {
        throw std::runtime_error(
            "dataset_loss: mixed-shape batch: sample " +
            std::to_string(batch[i]) + " is " +
            std::to_string(sample.grid.h_dim()) + "x" +
            std::to_string(sample.grid.v_dim()) + "x" +
            std::to_string(sample.grid.m_dim()) + " but the batch is " +
            std::to_string(first.grid.h_dim()) + "x" +
            std::to_string(first.grid.v_dim()) + "x" +
            std::to_string(first.grid.m_dim()));
      }
      const nn::Tensor input = SteinerSelector::encode(sample.grid, sample.extra_pins);
      std::copy(input.data(), input.data() + in_stride,
                stacked.data() + std::int64_t(i) * in_stride);
    }

    const nn::Tensor logits = selector.net().forward_batch(stacked);
    const std::int64_t out_stride = logits.numel() / std::int64_t(batch.size());
    nn::Tensor sample_logits({1, first.grid.h_dim(), first.grid.v_dim(),
                              first.grid.m_dim()});
    nn::Tensor label(sample_logits.shape());
    nn::Tensor mask(sample_logits.shape());
    double batch_loss = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const TrainingSample& sample = dataset.sample(batch[i]);
      std::copy(logits.data() + std::int64_t(i) * out_stride,
                logits.data() + std::int64_t(i + 1) * out_stride,
                sample_logits.data());
      std::copy(sample.label.begin(), sample.label.end(), label.data());
      std::copy(sample.mask.begin(), sample.mask.end(), mask.data());
      nn::Tensor grad_unused;
      batch_loss += nn::bce_with_logits(sample_logits, label, grad_unused, &mask);
    }
    total += batch_loss / double(batch.size());
    ++batches;
  }
  return total / double(batches);
}

CombTrainer::CombTrainer(SteinerSelector& selector, TrainConfig config)
    : selector_(selector),
      config_(config),
      optimizer_(selector.net().parameters(), config.lr),
      rng_(config.seed) {
  config_.validate();
  if (!config_.experience_path.empty()) {
    experience::StoreConfig sc;
    sc.memory_capacity = 0;  // the trainer only writes; no LRU needed
    sc.path = config_.experience_path;
    experience_ = std::make_unique<experience::Store>(sc);
  }
}

StageReport CombTrainer::run_stage() {
  StageReport report;
  report.stage = stage_index_;

  // Curriculum (paper Sec. 3.6): the first stages use layouts with a FIXED
  // pin count that grows from min_pins to max_pins, and the exact routing
  // cost instead of the critic.  Starting at 3 pins (a single-point budget)
  // concentrates the whole search budget on level-1 children, which is what
  // makes the early labels sharp enough to bootstrap the selector.
  const bool curriculum = stage_index_ < config_.curriculum_stages;
  std::int32_t min_pins = config_.min_pins;
  std::int32_t max_pins = config_.max_pins;
  if (curriculum) {
    const std::int32_t span = std::max<std::int32_t>(1, config_.curriculum_stages);
    const std::int32_t step =
        (config_.max_pins - config_.min_pins) * stage_index_ / span;
    min_pins = max_pins = std::min(config_.max_pins, config_.min_pins + step);
  }
  mcts::CombMctsConfig mcts_config = config_.mcts;
  mcts_config.use_critic = config_.mcts.use_critic && !curriculum;

  // ---- sample generation (parallel across layouts) ----
  util::Timer gen_timer;
  struct RawSample {
    hanan::HananGrid grid;
    mcts::CombMctsResult mcts;
  };

  std::vector<std::pair<gen::RandomGridSpec, std::uint64_t>> jobs;
  for (const LayoutSizeSpec& size : config_.sizes) {
    const gen::RandomGridSpec spec =
        training_spec(size, config_.obstacle_density, min_pins, max_pins);
    for (std::int32_t i = 0; i < config_.layouts_per_size; ++i) {
      jobs.emplace_back(spec, rng_.next());
    }
  }

  // One pool serves both phases: sample generation fans out over layouts,
  // the fit phase over per-worker replicas.  With tree-parallel search
  // (mcts.search_workers != 1) each episode already spawns its own worker
  // threads, so the layout-level fan-out shrinks to keep the total thread
  // footprint near config_.threads.
  const std::size_t search_workers =
      mcts_config.search_workers == 0
          ? util::ThreadPool::resolve_thread_count(0)
          : std::size_t(mcts_config.search_workers);
  const std::size_t gen_workers = std::min(
      std::max<std::size_t>(
          1, util::ThreadPool::resolve_thread_count(config_.threads) /
                 std::max<std::size_t>(1, search_workers)),
      jobs.empty() ? std::size_t(1) : jobs.size());
  const std::size_t fit_workers = util::ThreadPool::resolve_thread_count(
      config_.fit_workers > 0 ? config_.fit_workers : config_.threads);
  util::ThreadPool pool(std::max(gen_workers, fit_workers));

  // Each job checks out a private selector clone (module forward caches
  // are not thread safe); clones are pooled and reused across jobs.
  std::vector<std::unique_ptr<SteinerSelector>> clone_pool;
  std::mutex clone_mutex;
  auto checkout_clone = [&]() -> std::unique_ptr<SteinerSelector> {
    {
      std::lock_guard<std::mutex> lock(clone_mutex);
      if (!clone_pool.empty()) {
        auto clone = std::move(clone_pool.back());
        clone_pool.pop_back();
        return clone;
      }
    }
    auto clone = std::make_unique<SteinerSelector>(selector_.config());
    clone->copy_weights_from(selector_);
    return clone;
  };
  auto checkin_clone = [&](std::unique_ptr<SteinerSelector> clone) {
    std::lock_guard<std::mutex> lock(clone_mutex);
    clone_pool.push_back(std::move(clone));
  };

  // Results are written by job index, never appended: append order would
  // depend on thread completion and make fixed-seed runs diverge.
  std::vector<RawSample> raw(jobs.size());
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    auto clone = checkout_clone();
    util::Rng job_rng(jobs[i].second);
    hanan::HananGrid grid = gen::random_grid(jobs[i].first, job_rng);
    mcts::CombMctsConfig cfg = mcts_config;
    cfg.iterations_per_move =
        mcts::scaled_iterations(mcts_config.iterations_per_move, grid);
    mcts::CombMctsResult result;
    if (cfg.search_workers != 1) {
      mcts::ParallelCombMcts search(*clone, cfg);
      result = search.run(grid);
    } else {
      mcts::CombMcts search(*clone, cfg);
      result = search.run(grid);
    }
    raw[i] = RawSample{std::move(grid), std::move(result)};
    checkin_clone(std::move(clone));
  });
  report.sample_gen_seconds = gen_timer.seconds();
  report.raw_samples = std::int32_t(raw.size());
  report.seconds_per_sample =
      raw.empty() ? 0.0 : report.sample_gen_seconds / double(raw.size());

  double ratio_sum = 0.0;
  std::size_t ratio_count = 0;
  for (const RawSample& r : raw) {
    if (r.mcts.initial_cost > 0.0) {
      ratio_sum += r.mcts.best_cost / r.mcts.initial_cost;
      ++ratio_count;
    }
  }
  report.mean_mcts_st_mst = ratio_count == 0 ? 0.0 : ratio_sum / double(ratio_count);

  // ---- persist episodes (DESIGN.md §18) ----
  // Serial single-writer appends in job order (deterministic file bytes
  // for a fixed seed).  Each record routes pins + the search's best
  // combination once more — one exact construction against the thousands
  // the search already ran — so the stored tree matches what replay and
  // warm-start consumers expect.
  if (experience_) {
    route::RouterScratch scratch;
    for (const RawSample& r : raw) {
      route::OarmstRouter router(r.grid);
      route::OarmstResult routed =
          router.build(r.grid.pins(), r.mcts.best_selected, &scratch);
      if (!routed.connected) continue;
      experience_->put(experience::build_record(r.grid, routed, r.mcts.label,
                                                r.mcts.best_selected));
      ++report.experience_appends;
    }
    experience_->flush();
  }

  // ---- augmentation + dataset ----
  Dataset dataset;
  const auto augmentations = all_augmentations();
  const std::int32_t n_aug =
      config_.augment ? std::min<std::int32_t>(config_.augment_count, 16) : 1;
  for (const RawSample& r : raw) {
    for (std::int32_t a = 0; a < n_aug; ++a) {
      const AugmentSpec& spec = augmentations[std::size_t(a)];
      TrainingSample sample;
      sample.grid = transform_grid(r.grid, spec);
      sample.label = transform_label(r.grid, r.mcts.label, spec);
      sample.mask = transform_label(r.grid, r.mcts.label_mask, spec);
      dataset.add(std::move(sample));
    }
  }
  report.train_samples = std::int32_t(dataset.size());

  // ---- fit (data parallel across replicas) ----
  util::Timer fit_timer;
  FitOptions fit;
  fit.epochs = config_.epochs_per_stage;
  fit.batch_size = std::size_t(config_.batch_size);
  fit.grad_clip = config_.grad_clip;
  fit.workers = std::int32_t(fit_workers);
  fit.pool = &pool;
  report.mean_loss = fit_dataset(selector_, optimizer_, dataset, fit, rng_);
  report.train_seconds = fit_timer.seconds();

  TrainObs& tobs = train_obs();
  tobs.stages.inc();
  tobs.samples.add(std::uint64_t(report.raw_samples));
  tobs.stage_loss.set(report.mean_loss);
  tobs.samples_per_second.set(report.sample_gen_seconds > 0.0
                                  ? double(report.raw_samples) /
                                        report.sample_gen_seconds
                                  : 0.0);

  util::log_info("stage ", stage_index_, ": ", report.raw_samples, " layouts -> ",
                 report.train_samples, " samples, loss ", report.mean_loss,
                 ", mcts ST/MST ", report.mean_mcts_st_mst);
  ++stage_index_;
  return report;
}

std::vector<StageReport> CombTrainer::train() {
  std::vector<StageReport> reports;
  while (stage_index_ < config_.stages) {
    reports.push_back(run_stage());
    if (!config_.checkpoint_path.empty() &&
        !save_checkpoint(config_.checkpoint_path)) {
      util::log_error("failed to write checkpoint ", config_.checkpoint_path);
    }
  }
  if (config_.calibrate_int8) {
    // Post-training: calibrate the int8 engine on fresh layouts from the
    // training distribution, then gate it against fp32 (falls back on
    // failure — the trained artifact never serves a degraded quantization).
    std::vector<hanan::HananGrid> grids;
    for (const LayoutSizeSpec& size : config_.sizes) {
      const gen::RandomGridSpec spec = training_spec(
          size, config_.obstacle_density, config_.min_pins, config_.max_pins);
      for (std::int32_t i = 0; i < config_.int8_calibration_layouts; ++i) {
        grids.push_back(gen::random_grid(spec, rng_));
      }
    }
    std::vector<const hanan::HananGrid*> ptrs;
    ptrs.reserve(grids.size());
    for (const hanan::HananGrid& g : grids) ptrs.push_back(&g);
    selector_.calibrate_int8(ptrs);
    const Int8GateReport gate = evaluate_int8_gate(selector_, grids);
    util::log_info("int8 gate: agreement ", gate.mean_agreement,
                   ", cost ratio ", gate.mean_cost_ratio,
                   gate.passed        ? " (passed)"
                   : gate.fell_back   ? " (failed; serving fp32)"
                                      : " (failed)");
  }
  return reports;
}

bool CombTrainer::save_checkpoint(const std::string& path) {
  obs::ScopedTimer timer(train_obs().checkpoint_seconds);
  return nn::save_training_checkpoint(path, selector_.net(), optimizer_,
                                      rng_.state(), stage_index_);
}

bool CombTrainer::load_checkpoint(const std::string& path) {
  util::RngState rng_state;
  std::int32_t stage = 0;
  if (!nn::load_training_checkpoint(path, selector_.net(), optimizer_,
                                    &rng_state, &stage)) {
    return false;
  }
  rng_.set_state(rng_state);
  stage_index_ = stage;
  return true;
}

bool CombTrainer::try_resume() {
  return !config_.checkpoint_path.empty() &&
         load_checkpoint(config_.checkpoint_path);
}

}  // namespace oar::rl
