#include "gen/grid_io.hpp"

#include <array>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

namespace oar::gen {

namespace {

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool write_grid(const hanan::HananGrid& grid, std::ostream& out) {
  out << std::setprecision(17);  // lossless double round trip
  out << "oargrid 1\n";
  out << "dims " << grid.h_dim() << " " << grid.v_dim() << " " << grid.m_dim()
      << "\n";
  out << "via " << grid.via_cost() << "\n";
  out << "xsteps";
  for (std::int32_t h = 0; h + 1 < grid.h_dim(); ++h) out << " " << grid.x_step(h);
  out << "\nysteps";
  for (std::int32_t v = 0; v + 1 < grid.v_dim(); ++v) out << " " << grid.y_step(v);
  out << "\n";

  out << "pins";
  for (hanan::Vertex p : grid.pins()) {
    const auto c = grid.cell(p);
    out << " " << c.h << " " << c.v << " " << c.m;
  }
  out << "\n";

  out << "blocked";
  for (hanan::Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (!grid.is_blocked(v)) continue;
    const auto c = grid.cell(v);
    out << " " << c.h << " " << c.v << " " << c.m;
  }
  out << "\nend\n";
  return bool(out);
}

bool save_grid(const hanan::HananGrid& grid, const std::string& path) {
  std::ofstream out(path);
  return out && write_grid(grid, out);
}

std::optional<hanan::HananGrid> read_grid(std::istream& in, std::string* error) {
  std::int32_t H = -1, V = -1, M = -1;
  double via = 1.0;
  std::vector<double> xsteps, ysteps;
  std::vector<std::array<std::int32_t, 3>> pins, blocked;
  bool saw_header = false, saw_end = false;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "oargrid") {
      int version = 0;
      ls >> version;
      if (version != 1) {
        fail(error, "unsupported oargrid version");
        return std::nullopt;
      }
      saw_header = true;
    } else if (keyword == "dims") {
      if (!(ls >> H >> V >> M) || H < 1 || V < 1 || M < 1) {
        fail(error, "bad dims line");
        return std::nullopt;
      }
    } else if (keyword == "via") {
      if (!(ls >> via) || via < 0.0) {
        fail(error, "bad via line");
        return std::nullopt;
      }
    } else if (keyword == "xsteps") {
      double s;
      while (ls >> s) xsteps.push_back(s);
    } else if (keyword == "ysteps") {
      double s;
      while (ls >> s) ysteps.push_back(s);
    } else if (keyword == "pins" || keyword == "blocked") {
      auto& list = keyword == "pins" ? pins : blocked;
      std::vector<std::int32_t> coords;
      std::int32_t value;
      while (ls >> value) coords.push_back(value);
      if (!ls.eof() || coords.size() % 3 != 0) {
        fail(error, "bad " + keyword + " line");
        return std::nullopt;
      }
      for (std::size_t i = 0; i + 2 < coords.size(); i += 3) {
        list.push_back({coords[i], coords[i + 1], coords[i + 2]});
      }
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      fail(error, "unknown keyword: " + keyword);
      return std::nullopt;
    }
  }

  if (!saw_header || !saw_end) {
    fail(error, "missing oargrid header or end marker");
    return std::nullopt;
  }
  if (H < 1) {
    fail(error, "missing dims");
    return std::nullopt;
  }
  if (std::ssize(xsteps) != H - 1 || std::ssize(ysteps) != V - 1) {
    fail(error, "step count does not match dims");
    return std::nullopt;
  }
  for (double s : xsteps) {
    if (s <= 0.0) {
      fail(error, "non-positive x step");
      return std::nullopt;
    }
  }
  for (double s : ysteps) {
    if (s <= 0.0) {
      fail(error, "non-positive y step");
      return std::nullopt;
    }
  }

  hanan::HananGrid grid(H, V, M, std::move(xsteps), std::move(ysteps), via);
  auto in_range = [&](const std::array<std::int32_t, 3>& c) {
    return c[0] >= 0 && c[0] < H && c[1] >= 0 && c[1] < V && c[2] >= 0 && c[2] < M;
  };
  for (const auto& c : blocked) {
    if (!in_range(c)) {
      fail(error, "blocked vertex out of range");
      return std::nullopt;
    }
    grid.block_vertex(grid.index(c[0], c[1], c[2]));
  }
  for (const auto& c : pins) {
    if (!in_range(c)) {
      fail(error, "pin out of range");
      return std::nullopt;
    }
    const hanan::Vertex idx = grid.index(c[0], c[1], c[2]);
    if (grid.is_blocked(idx)) {
      fail(error, "pin on blocked vertex");
      return std::nullopt;
    }
    grid.add_pin(idx);
  }
  return grid;
}

std::optional<hanan::HananGrid> load_grid(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  return read_grid(in, error);
}

}  // namespace oar::gen
