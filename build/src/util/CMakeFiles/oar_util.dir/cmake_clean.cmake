file(REMOVE_RECURSE
  "CMakeFiles/oar_util.dir/csv.cpp.o"
  "CMakeFiles/oar_util.dir/csv.cpp.o.d"
  "CMakeFiles/oar_util.dir/logging.cpp.o"
  "CMakeFiles/oar_util.dir/logging.cpp.o.d"
  "CMakeFiles/oar_util.dir/rng.cpp.o"
  "CMakeFiles/oar_util.dir/rng.cpp.o.d"
  "CMakeFiles/oar_util.dir/stats.cpp.o"
  "CMakeFiles/oar_util.dir/stats.cpp.o.d"
  "CMakeFiles/oar_util.dir/thread_pool.cpp.o"
  "CMakeFiles/oar_util.dir/thread_pool.cpp.o.d"
  "liboar_util.a"
  "liboar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
