#pragma once

// Evaluation utilities: the ST-to-MST ratio of Figs. 11-12 (routing cost of
// the Steiner tree built from the agent's selected points over the cost of
// the plain spanning tree with no Steiner points), for both one-shot
// (combinatorial) and sequential agents.

#include "rl/selector.hpp"

namespace oar::rl {

struct EvalOptions {
  /// true: the agent is a sequential selector (one inference per point).
  bool sequential = false;
  double seq_stop_threshold = 0.05;
};

struct EvalStats {
  double mean_st_mst_ratio = 0.0;
  double mean_st_cost = 0.0;
  double mean_mst_cost = 0.0;
  double mean_inferences = 0.0;  // network inferences per layout
  double select_seconds = 0.0;   // total Steiner-point selection time
  std::int32_t count = 0;
};

EvalStats evaluate_st_to_mst(SteinerSelector& selector,
                             const std::vector<hanan::HananGrid>& grids,
                             EvalOptions options = {});

/// Result of the int8 accuracy gate (DESIGN.md §17): the quantized engine
/// must agree with fp32 on the selected Steiner points and not inflate the
/// routed cost beyond tolerance, or the selector falls back to fp32.
struct Int8GateReport {
  double mean_agreement = 0.0;   // |top-k(int8) ∩ top-k(fp32)| / k
  double mean_cost_ratio = 0.0;  // routed cost int8 / fp32
  std::int32_t count = 0;        // layouts that contributed
  bool passed = false;
  bool fell_back = false;  // gate failed and precision dropped to fp32
};

/// Runs both precisions over `grids` and applies the thresholds from the
/// selector's InferConfig.  Requires a calibrated int8 engine (throws
/// std::logic_error otherwise).  On failure the selector is switched back
/// to fp32 when `infer.int8_fallback_to_fp32` is set; on success it is
/// left on int8.
Int8GateReport evaluate_int8_gate(SteinerSelector& selector,
                                  const std::vector<hanan::HananGrid>& grids);

}  // namespace oar::rl
