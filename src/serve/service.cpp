#include "serve/service.hpp"

#include <algorithm>
#include <cmath>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/batched_selector.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace oar::serve {

namespace {

// Global-registry counterparts of ServiceMetrics (which keeps the CSV
// percentile path).  Names follow the oar_<subsystem>_<what>_<unit> scheme
// of DESIGN.md §12; the serving integration test pins these families.
struct ServeObs {
  obs::Counter& requests;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& batches;
  obs::Counter& deadline_misses;
  obs::Gauge& queue_depth;
  obs::Gauge& cache_entries;
  obs::Histogram& batch_occupancy;
  obs::Histogram& request_latency;
  obs::Histogram& inference_latency;
  obs::Histogram& routing_latency;
};

ServeObs& serve_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static ServeObs o{
      reg.counter("oar_serve_requests_total", "Routing requests submitted"),
      reg.counter("oar_serve_cache_hits_total",
                  "Requests answered from the symmetry-aware result cache"),
      reg.counter("oar_serve_cache_misses_total",
                  "Requests that missed the result cache and were queued"),
      reg.counter("oar_serve_batches_total", "Micro-batches processed"),
      reg.counter("oar_serve_deadline_misses_total",
                  "Replies that finished after the request deadline"),
      reg.gauge("oar_serve_queue_depth", "Requests waiting in the batcher queue"),
      reg.gauge("oar_serve_cache_entries", "Entries resident in the result cache"),
      reg.histogram("oar_serve_batch_occupancy", obs::pow2_buckets(8),
                    "Requests per processed micro-batch"),
      reg.histogram("oar_serve_request_latency_seconds", obs::latency_buckets(),
                    "Submit-to-reply latency per request"),
      reg.histogram("oar_serve_inference_seconds", obs::latency_buckets(),
                    "Batched U-Net pass latency per micro-batch"),
      reg.histogram("oar_serve_routing_seconds", obs::latency_buckets(),
                    "OARMST fan-out latency per micro-batch"),
  };
  return o;
}

}  // namespace

void RouterServiceConfig::validate() const {
  util::check_field(max_batch >= 1, "RouterServiceConfig", "max_batch",
                    "be >= 1 (1 disables batching)", max_batch);
  util::check_field(batch_wait_ms >= 0.0 && std::isfinite(batch_wait_ms),
                    "RouterServiceConfig", "batch_wait_ms",
                    "be finite and non-negative", batch_wait_ms);
}

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool same_shape(const HananGrid& a, const HananGrid& b) {
  return a.h_dim() == b.h_dim() && a.v_dim() == b.v_dim() &&
         a.m_dim() == b.m_dim();
}

}  // namespace

RouterService::RouterService(std::shared_ptr<rl::SteinerSelector> selector,
                             RouterServiceConfig config)
    : config_(config),
      selector_(std::move(selector)),
      cache_(config.cache_capacity),
      pool_(config.worker_threads) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  config_.validate();
  batcher_ = std::thread([this] { batcher_loop(); });
}

RouterService::~RouterService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  batcher_.join();
}

std::future<RouteReply> RouterService::submit(RouteRequest request) {
  metrics_.add_request();
  serve_obs().requests.inc();
  const Clock::time_point now = Clock::now();

  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = now;
  std::future<RouteReply> fut = pending.promise.get_future();

  if (cache_.capacity() > 0) {
    pending.canon = canonicalize(*pending.request.grid);
    if (std::optional<CachedRoute> hit = cache_.get(pending.canon.key)) {
      metrics_.add_cache_hit();
      serve_obs().cache_hits.inc();
      RouteReply reply = replay_cached(pending.request, pending.canon, *hit);
      reply.total_seconds = seconds_between(now, Clock::now());
      if (pending.request.deadline && Clock::now() > *pending.request.deadline) {
        reply.deadline_met = false;
        metrics_.add_deadline_miss();
        serve_obs().deadline_misses.inc();
      }
      metrics_.record_stage(Stage::kTotal, reply.total_seconds);
      serve_obs().request_latency.observe(reply.total_seconds);
      pending.promise.set_value(std::move(reply));
      return fut;
    }
  }

  serve_obs().cache_misses.inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(pending));
    serve_obs().queue_depth.set(double(queue_.size()));
  }
  cv_.notify_all();
  return fut;
}

RouteReply RouterService::route(std::shared_ptr<const HananGrid> grid) {
  return submit(RouteRequest{std::move(grid), std::nullopt}).get();
}

void RouterService::batcher_loop() {
  for (;;) {
    std::vector<Pending> batch = take_batch();
    if (batch.empty()) return;
    process_batch(std::move(batch));
  }
}

std::vector<RouterService::Pending> RouterService::take_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // stopping and drained

  std::vector<Pending> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const HananGrid& shape = *batch.front().request.grid;

  const auto harvest = [&] {
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < config_.max_batch;) {
      if (same_shape(*it->request.grid, shape)) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };

  const Clock::time_point wait_until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             config_.batch_wait_ms));
  harvest();
  while (batch.size() < config_.max_batch && !stopping_) {
    if (cv_.wait_until(lock, wait_until) == std::cv_status::timeout) {
      harvest();
      break;
    }
    harvest();
  }
  serve_obs().queue_depth.set(double(queue_.size()));
  return batch;
}

void RouterService::process_batch(std::vector<Pending> batch) {
  const Clock::time_point popped = Clock::now();
  for (const Pending& p : batch) {
    metrics_.record_stage(Stage::kQueueWait, seconds_between(p.enqueued, popped));
  }
  metrics_.add_batch(batch.size());
  serve_obs().batches.inc();
  serve_obs().batch_occupancy.observe(double(batch.size()));

  std::vector<const HananGrid*> grids;
  grids.reserve(batch.size());
  for (const Pending& p : batch) grids.push_back(p.request.grid.get());

  // Stage 1: one batched U-Net pass for the whole micro-batch.
  util::Timer infer_timer;
  const std::vector<std::vector<double>> fsp =
      batched_fsp(*selector_, grids, &pool_);
  const double infer_seconds = infer_timer.seconds();
  metrics_.record_stage(Stage::kBatchAssembly, 0.0);
  metrics_.record_stage(Stage::kInference, infer_seconds);
  serve_obs().inference_latency.observe(infer_seconds);

  // Stage 2: per-net top-k + OARMST construction across the pool.
  util::Timer route_timer;
  std::vector<route::OarmstResult> results(batch.size());
  pool_.parallel_for(batch.size(), [&](std::size_t i) {
    const HananGrid& grid = *batch[i].request.grid;
    const std::int32_t budget =
        std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);
    const std::vector<Vertex> steiner =
        rl::SteinerSelector::top_k_valid(grid, fsp[i], budget, {});
    // Per-pool-thread scratch: the maze arrays persist across batches, so
    // steady-state serving does no O(V) routing allocations.
    route::OarmstRouter router(grid);
    results[i] = router.build(grid.pins(), steiner, &route::local_router_scratch());
  });
  const double route_seconds = route_timer.seconds();
  metrics_.record_stage(Stage::kRouting, route_seconds);
  serve_obs().routing_latency.observe(route_seconds);

  const Clock::time_point done = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    route::OarmstResult& res = results[i];

    if (cache_.capacity() > 0 && res.connected) {
      // Store in canonical vertex space so symmetry variants hit too.
      CachedRoute entry;
      entry.cost = res.cost;
      entry.connected = res.connected;
      entry.edges.reserve(res.tree.edges().size());
      const HananGrid& grid = *p.request.grid;
      for (const route::GridEdge& e : res.tree.edges()) {
        Vertex a = rl::transform_vertex(grid, e.a, p.canon.spec);
        Vertex b = rl::transform_vertex(grid, e.b, p.canon.spec);
        if (b < a) std::swap(a, b);
        entry.edges.push_back(route::GridEdge{a, b});
      }
      entry.steiner.reserve(res.kept_steiner.size());
      for (Vertex v : res.kept_steiner) {
        entry.steiner.push_back(rl::transform_vertex(grid, v, p.canon.spec));
      }
      cache_.put(p.canon.key, std::move(entry));
    }

    RouteReply reply;
    reply.grid = p.request.grid;
    reply.result = std::move(res);
    reply.result.tree.rebind_grid(reply.grid.get());
    reply.cache_hit = false;
    reply.queue_seconds = seconds_between(p.enqueued, popped);
    reply.inference_seconds = infer_seconds;
    reply.routing_seconds = route_seconds;
    reply.total_seconds = seconds_between(p.enqueued, done);
    if (p.request.deadline && done > *p.request.deadline) {
      reply.deadline_met = false;
      metrics_.add_deadline_miss();
      serve_obs().deadline_misses.inc();
    }
    metrics_.record_stage(Stage::kTotal, reply.total_seconds);
    serve_obs().request_latency.observe(reply.total_seconds);
    p.promise.set_value(std::move(reply));
  }
}

std::string RouterService::scrape_prometheus() {
  ServeObs& o = serve_obs();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    o.queue_depth.set(double(queue_.size()));
  }
  o.cache_entries.set(double(cache_.size()));
  return obs::scrape_prometheus();
}

std::string RouterService::scrape_json() {
  ServeObs& o = serve_obs();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    o.queue_depth.set(double(queue_.size()));
  }
  o.cache_entries.set(double(cache_.size()));
  return obs::scrape_json();
}

RouteReply RouterService::replay_cached(const RouteRequest& request,
                                        const CanonicalForm& canon,
                                        const CachedRoute& cached) const {
  const HananGrid& grid = *request.grid;
  const std::vector<Vertex> inv = inverse_vertex_map(grid, canon.spec);

  RouteReply reply;
  reply.grid = request.grid;
  reply.cache_hit = true;

  route::RouteTree tree(request.grid.get());
  for (const route::GridEdge& e : cached.edges) {
    tree.add_edge(inv[std::size_t(e.a)], inv[std::size_t(e.b)]);
  }
  reply.result.tree = std::move(tree);
  reply.result.cost = cached.cost;
  reply.result.connected = cached.connected;
  reply.result.rebuild_passes = 0;
  reply.result.kept_steiner.reserve(cached.steiner.size());
  for (Vertex v : cached.steiner) {
    reply.result.kept_steiner.push_back(inv[std::size_t(v)]);
  }
  return reply;
}

}  // namespace oar::serve
