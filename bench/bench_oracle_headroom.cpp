// Headroom ablation (DESIGN.md Sec. 6): on tiny layouts where the oracle
// selector can exhaustively enumerate Steiner subsets, measure how much of
// the oracle's improvement over the no-search construction each router
// recovers.  This quantifies what a *perfect* Steiner-point selector could
// gain — the ceiling the paper's RL selector is trained toward — and shows
// where the algorithmic baselines and the (CPU-budget-trained) RL selector
// sit within that window.

#include "bench_common.hpp"

int main() {
  using namespace oar;

  auto selector = bench::bench_selector();
  core::RlRouter ours(selector);
  steiner::Lin08Router lin08;
  steiner::Liu14Router liu14;
  steiner::Lin18Router lin18;
  steiner::OracleRouter oracle(steiner::OracleConfig{2, 60000});

  const int layouts = std::max(1, int(24 * bench::env_scale()));
  util::Rng rng(0x0eac1e);
  gen::RandomGridSpec spec;
  spec.h = 7;
  spec.v = 7;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 6;
  spec.min_obstacles = 4;
  spec.max_obstacles = 8;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 10;

  util::RunningStats gap08, gap14, gap18, gap_ours, oracle_gain;
  int improvable = 0;
  for (int i = 0; i < layouts; ++i) {
    const hanan::HananGrid grid = gen::random_grid(spec, rng);
    const double base = lin08.route(grid).cost;  // no Steiner-point search
    const double opt = oracle.route(grid).cost;
    if (base <= 0.0 || opt >= base - 1e-9) continue;  // no headroom here
    ++improvable;
    oracle_gain.add(100.0 * (base - opt) / base);
    const double window = base - opt;
    auto recovered = [&](double cost) {
      return 100.0 * (base - cost) / window;  // % of the oracle window
    };
    gap08.add(recovered(base));
    gap14.add(recovered(liu14.route(grid).cost));
    gap18.add(recovered(lin18.route(grid).cost));
    gap_ours.add(recovered(ours.route(grid).cost));
  }

  std::printf("Oracle headroom on %d tiny layouts (%d with Steiner headroom)\n\n",
              layouts, improvable);
  std::printf("oracle improvement over plain construction: %.2f%% of cost\n\n",
              oracle_gain.mean());
  std::printf("%% of the oracle window recovered (100%% = optimal selection):\n");
  std::printf("  %-8s %7.1f%%\n", "lin08", gap08.mean());
  std::printf("  %-8s %7.1f%%\n", "liu14", gap14.mean());
  std::printf("  %-8s %7.1f%%\n", "lin18", gap18.mean());
  std::printf("  %-8s %7.1f%%\n", "rl-ours", gap_ours.mean());
  std::printf("\npaper context: at full training scale the RL selector beats lin18;"
              " at CPU scale\nit recovers less of the window — see EXPERIMENTS.md.\n");
  return 0;
}
