#include "mcts/comb_mcts.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "experience/warm_start.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace oar::mcts {

namespace {

struct MctsObs {
  obs::Counter& episodes;
  obs::Counter& iterations;
  obs::Counter& simulations;
  obs::Counter& expansions;
  obs::Histogram& episode_seconds;
};

MctsObs& mcts_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static MctsObs o{
      reg.counter("oar_mcts_episodes_total",
                  "Combinatorial MCTS search trees built (CombMcts::run)"),
      reg.counter("oar_mcts_iterations_total", "UCT iterations across all episodes"),
      reg.counter("oar_mcts_simulations_total",
                  "Leaf evaluations (critic or exact) across all episodes"),
      reg.counter("oar_mcts_expansions_total", "Node expansions across all episodes"),
      reg.histogram("oar_mcts_episode_seconds", obs::latency_buckets(),
                    "Wall time per CombMcts episode"),
  };
  return o;
}

struct Edge {
  Vertex action = hanan::kInvalidVertex;
  double prior = 0.0;
  std::int64_t visits = 0;
  double total_value = 0.0;
  std::int32_t child = -1;  // node index, -1 until materialized

  double q() const { return visits == 0 ? 0.0 : total_value / double(visits); }
};

struct Node {
  std::int32_t parent = -1;
  Vertex action = hanan::kInvalidVertex;  // action leading here
  std::int64_t action_priority = -1;
  std::int32_t level = 0;       // number of selected Steiner points
  std::int32_t flat_run = 0;    // consecutive flat-cost actions
  double cost = -1.0;           // exact raw state cost, -1 until computed
  bool expanded = false;
  bool terminal = false;
  std::vector<Edge> edges;
};

}  // namespace

std::int32_t scaled_iterations(std::int32_t base_iterations,
                               const hanan::HananGrid& grid) {
  // Paper reference size: 16 x 16 x 4 = 1024 vertices.
  const double reference = 16.0 * 16.0 * 4.0;
  const double ratio = double(grid.num_vertices()) / reference;
  return std::max<std::int32_t>(
      8, std::int32_t(std::lround(double(base_iterations) * std::max(ratio, 0.05))));
}

void CombMctsConfig::validate() const {
  util::check_field(iterations_per_move >= 1, "CombMctsConfig",
                    "iterations_per_move", "be >= 1", iterations_per_move);
  util::check_field(c_puct >= 0.0, "CombMctsConfig", "c_puct",
                    "be non-negative", c_puct);
  util::check_field(flat_cost_patience >= 0, "CombMctsConfig",
                    "flat_cost_patience", "be >= 0", flat_cost_patience);
  util::check_field(flat_eps >= 0.0, "CombMctsConfig", "flat_eps",
                    "be non-negative", flat_eps);
  util::check_field(max_children >= 0, "CombMctsConfig", "max_children",
                    "be >= 0 (0 = all valid children)", max_children);
  util::check_field(prior_uniform_mix >= 0.0 && prior_uniform_mix <= 1.0,
                    "CombMctsConfig", "prior_uniform_mix", "be in [0, 1]",
                    prior_uniform_mix);
  util::check_field(search_workers >= 0, "CombMctsConfig", "search_workers",
                    "be >= 0 (0 = hardware concurrency, 1 = serial)",
                    search_workers);
  util::check_field(eval_batch >= 1, "CombMctsConfig", "eval_batch", "be >= 1",
                    eval_batch);
  util::check_field(flush_us >= 0, "CombMctsConfig", "flush_us",
                    "be non-negative", flush_us);
  util::check_field(warm_start_weight >= 0.0 && warm_start_weight <= 1.0,
                    "CombMctsConfig", "warm_start_weight", "be in [0, 1]",
                    warm_start_weight);
  util::check_field(warm_start_visits >= 0, "CombMctsConfig",
                    "warm_start_visits", "be >= 0", warm_start_visits);
}

CombMcts::CombMcts(rl::SteinerSelector& selector, CombMctsConfig config,
                   const experience::Store* experience)
    : selector_(selector), config_(config), experience_(experience) {
  config_.validate();
}

CombMctsResult CombMcts::run(const HananGrid& grid,
                             const SearchDeadline& deadline) {
  util::Timer timer;
  CombMctsResult result;
  const auto n_vertices = std::size_t(grid.num_vertices());
  result.label.assign(n_vertices, 0.0f);
  result.label_mask.assign(n_vertices, 0.0f);

  ActorCritic ac(selector_, grid);
  const std::int32_t budget = std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);

  // Per-vertex selection statistics (eq. (3)), indexed by priority.
  std::vector<std::int64_t> n_sel(n_vertices, 0), n_opp(n_vertices, 0);

  std::vector<Node> nodes;
  nodes.reserve(1024);
  nodes.emplace_back();  // root
  nodes[0].cost = ac.exact_cost({});
  result.initial_cost = nodes[0].cost;
  result.final_cost = nodes[0].cost;
  result.best_cost = nodes[0].cost;
  // Node achieving best_cost.  Every candidate has had its exact routing
  // cost computed, so the state it denotes is always a valid routed answer.
  std::int32_t best_node = 0;

  const double rc0 = std::max(nodes[0].cost, 1e-12);
  if (!std::isfinite(nodes[0].cost)) {
    // Pins themselves are unroutable: no Steiner selection can help, and
    // every value below would be NaN.  Report the degenerate episode.
    nodes[0].terminal = true;
  }

  // Normalized state value.  Disconnected states (cost == +inf, see
  // OarmstResult::cost) map to a finite penalty well below any reachable
  // connected value — the cost-increase terminal rule ends episodes long
  // before cost reaches 3*rc0 — so UCT's running means stay finite instead
  // of absorbing -inf into whole subtrees.
  auto value_of = [&](double cost) {
    return std::isfinite(cost) ? (rc0 - cost) / rc0 : -2.0;
  };

  // State of a node: Steiner points along the path from the root.
  auto state_of = [&](std::int32_t node) {
    std::vector<Vertex> selected;
    for (std::int32_t cur = node; cur != 0; cur = nodes[std::size_t(cur)].parent) {
      selected.push_back(nodes[std::size_t(cur)].action);
    }
    std::reverse(selected.begin(), selected.end());
    return selected;
  };

  auto mark_terminal_rules = [&](Node& node, const Node& parent) {
    if (node.level >= budget) node.terminal = true;
    const double parent_cost = parent.cost;
    if (config_.stop_on_cost_increase &&
        node.cost > parent_cost * (1.0 + config_.flat_eps)) {
      node.terminal = true;
    }
    if (std::abs(node.cost - parent_cost) <= parent_cost * config_.flat_eps) {
      node.flat_run = parent.flat_run + 1;
      if (node.flat_run >= config_.flat_cost_patience) node.terminal = true;
    } else {
      node.flat_run = 0;
    }
  };

  if (budget == 0) nodes[0].terminal = true;

  // --- persistent-experience warm start (DESIGN.md §18) ---
  // Resolved once, before the first iteration.  With warm_start off, no
  // store attached, or no applicable experience, `warm` stays empty and
  // every warm branch below is dead — the search is bitwise the cold
  // search.
  experience::WarmStart warm;
  std::vector<Vertex> warm_best;  // floor combination, request space
  bool best_is_warm = false;      // the floor currently holds best_cost
  Vertex warm_first = hanan::kInvalidVertex;  // root edge to visit-seed
  double warm_seed_value = 0.0;
  if (config_.warm_start && experience_ != nullptr && !nodes[0].terminal) {
    warm = experience::lookup_warm_start(*experience_, grid);
    result.stats.warm_matches = warm.matches;
    result.stats.warm_started = !warm.empty();
    if (warm.exact && !warm.best.empty() && std::ssize(warm.best) <= budget) {
      // Re-evaluate the recorded combination under THIS search's exact
      // cost model and adopt it as the best-so-far floor: a replayed
      // layout can then never finish worse than its recorded episode.
      const double floor_cost = ac.exact_cost(warm.best);
      ++result.stats.simulations;
      warm_first = warm.best.front();  // priority-sorted: the first action
      warm_seed_value = value_of(floor_cost);
      if (floor_cost < result.best_cost) {
        result.best_cost = floor_cost;
        warm_best = warm.best;
        best_is_warm = true;
      }
    }
  }

  // fsp buffer reused across every expansion: with the selector in
  // inference mode the whole evaluate step is then allocation-free.
  std::vector<double> fsp(std::size_t(n_vertices), 0.0);

  std::int32_t root = 0;
  while (!nodes[std::size_t(root)].terminal) {
    // --- alpha UCT iterations from the current root ---
    for (std::int32_t iter = 0; iter < config_.iterations_per_move; ++iter) {
      // Anytime control: checked at iteration granularity, but the very
      // first iteration of the run always executes so a zero-slack request
      // still gets one evaluated expansion (the one-iteration fallback).
      if (deadline && result.stats.iterations > 0 &&
          SearchClock::now() >= *deadline) {
        result.stats.deadline_hit = true;
        break;
      }
      ++result.stats.iterations;
      std::int32_t cur = root;

      // Selection: descend through expanded, non-terminal nodes.
      struct Step {
        std::int32_t node;
        std::size_t edge;
      };
      std::vector<Step> path;
      while (nodes[std::size_t(cur)].expanded && !nodes[std::size_t(cur)].terminal) {
        Node& node = nodes[std::size_t(cur)];
        assert(!node.edges.empty());
        std::int64_t total_visits = 0;
        for (const Edge& e : node.edges) total_visits += e.visits;
        const double sqrt_total = std::sqrt(double(total_visits));

        std::size_t best = 0;
        double best_score = -1e300;
        for (std::size_t i = 0; i < node.edges.size(); ++i) {
          const Edge& e = node.edges[i];
          const double u =
              config_.c_puct * e.prior * sqrt_total / (1.0 + double(e.visits));
          double score = e.q() + u;
          if (total_visits == 0) score = e.prior;  // cold node: order by prior
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }

        // eq. (3) bookkeeping: every candidate gets an opportunity, the
        // chosen one a selection.
        for (const Edge& e : node.edges) {
          ++n_opp[std::size_t(grid.priority_of(e.action))];
        }
        ++n_sel[std::size_t(grid.priority_of(node.edges[best].action))];

        path.push_back({cur, best});
        Edge& edge = node.edges[best];
        if (edge.child < 0) {
          // Materialize the child node.
          Node child;
          child.parent = cur;
          child.action = edge.action;
          child.action_priority = grid.priority_of(edge.action);
          child.level = node.level + 1;
          edge.child = std::int32_t(nodes.size());
          nodes.push_back(child);
          ++result.stats.nodes;
          // NOTE: `node` and `edge` references are invalidated by push_back.
        }
        cur = nodes[std::size_t(path.back().node)].edges[path.back().edge].child;
      }

      // Leaf evaluation.
      Node& leaf = nodes[std::size_t(cur)];
      const std::vector<Vertex> selected = state_of(cur);

      if (leaf.cost < 0.0) {
        leaf.cost = ac.exact_cost(selected);
        mark_terminal_rules(leaf, nodes[std::size_t(leaf.parent)]);
        if (leaf.cost < result.best_cost) {
          result.best_cost = leaf.cost;
          best_node = cur;
          best_is_warm = false;
        }
      }

      double value;
      if (leaf.terminal) {
        value = value_of(leaf.cost);
      } else if (!leaf.expanded) {
        // Expansion: children from the actor policy.
        ac.fsp_into(selected, fsp);
        auto policy = ac.policy(selected, leaf.action_priority, fsp);
        if (config_.max_children > 0 &&
            std::ssize(policy) > config_.max_children) {
          std::partial_sort(policy.begin(), policy.begin() + config_.max_children,
                            policy.end(), [](const auto& a, const auto& b) {
                              return a.second > b.second;
                            });
          policy.resize(std::size_t(config_.max_children));
          double total = 0.0;
          for (const auto& [v, p] : policy) total += p;
          if (total > 0.0) {
            for (auto& [v, p] : policy) p /= total;
          }
        }
        if (policy.empty()) {
          leaf.terminal = true;
          value = value_of(leaf.cost);
        } else {
          const double mix = config_.prior_uniform_mix;
          const double uniform = 1.0 / double(policy.size());
          leaf.edges.reserve(policy.size());
          for (const auto& [v, p] : policy) {
            Edge e;
            e.action = v;
            e.prior = (1.0 - mix) * p + mix * uniform;
            leaf.edges.push_back(e);
          }
          if (cur == 0 && !warm.empty()) {
            // Warm start at the initial root: blend the experience prior
            // (renormalized over the actual child set) into the expansion
            // priors, P' = (1-λ)·P_search + λ·P_exp, then seed synthetic
            // visits on the recorded first action of an exact match so UCT
            // resumes from the recorded trajectory's statistics.
            if (!warm.prior.empty()) {
              double mass = 0.0;
              for (const Edge& e : leaf.edges) {
                mass +=
                    double(warm.prior[std::size_t(grid.priority_of(e.action))]);
              }
              if (mass > 0.0) {
                const double lam = config_.warm_start_weight;
                for (Edge& e : leaf.edges) {
                  const double p_exp =
                      double(warm.prior[std::size_t(grid.priority_of(e.action))]) /
                      mass;
                  e.prior = (1.0 - lam) * e.prior + lam * p_exp;
                }
              }
            }
            if (warm_first != hanan::kInvalidVertex &&
                config_.warm_start_visits > 0) {
              for (Edge& e : leaf.edges) {
                if (e.action == warm_first) {
                  e.visits += config_.warm_start_visits;
                  e.total_value +=
                      double(config_.warm_start_visits) * warm_seed_value;
                  break;
                }
              }
            }
          }
          leaf.expanded = true;
          ++result.stats.expansions;

          // Simulation: critic completion (or exact state cost in
          // curriculum mode).
          ++result.stats.simulations;
          const double predicted = config_.use_critic
                                       ? ac.critic_cost(selected, budget, fsp)
                                       : leaf.cost;
          value = value_of(predicted);
        }
      } else {
        value = value_of(leaf.cost);  // terminal reached via descent
      }

      // Backpropagation.
      for (const Step& step : path) {
        Edge& e = nodes[std::size_t(step.node)].edges[step.edge];
        e.visits += 1;
        e.total_value += value;
      }
    }

    // A hit deadline ends the whole search: best_selected already denotes
    // the best fully-evaluated state, so executing further moves (and the
    // exact_cost call that entails) would only spend budget we do not have.
    if (result.stats.deadline_hit) break;

    // --- execute the most-visited root action ---
    Node& root_node = nodes[std::size_t(root)];
    if (!root_node.expanded || root_node.edges.empty()) break;
    std::size_t best = 0;
    for (std::size_t i = 1; i < root_node.edges.size(); ++i) {
      if (root_node.edges[i].visits > root_node.edges[best].visits) best = i;
    }
#ifdef OAR_MCTS_DEBUG
    {
      std::vector<std::size_t> order(root_node.edges.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return root_node.edges[a].visits > root_node.edges[b].visits;
      });
      std::fprintf(stderr, "[mcts] root cost=%.0f children=%zu:", root_node.cost,
                   root_node.edges.size());
      for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
        const Edge& e = root_node.edges[order[i]];
        const double child_cost =
            e.child >= 0 ? nodes[std::size_t(e.child)].cost : -1.0;
        std::fprintf(stderr, "  [N=%lld Q=%.4f P=%.5f cost=%.0f]",
                     (long long)e.visits, e.q(), e.prior, child_cost);
      }
      std::fprintf(stderr, "\n");
    }
#endif
    Edge& chosen = root_node.edges[best];
    if (chosen.child < 0) break;  // never explored: nothing to execute
    root = chosen.child;
    ++result.stats.executed_moves;

    Node& new_root = nodes[std::size_t(root)];
    if (new_root.cost < 0.0) {
      new_root.cost = ac.exact_cost(state_of(root));
      mark_terminal_rules(new_root, nodes[std::size_t(new_root.parent)]);
    }
    if (new_root.cost < result.best_cost) {
      result.best_cost = new_root.cost;
      best_node = root;
      best_is_warm = false;
    }
  }

  result.selected = state_of(root);
  result.best_selected = best_is_warm ? warm_best : state_of(best_node);
  result.final_cost = nodes[std::size_t(root)].cost;

  // eq. (3): L_fsp(v) = n_sel / n_opp, in priority order.  The mask marks
  // vertices that are legal Steiner locations (not pins / obstacles).
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    const auto p = std::size_t(grid.priority_of(v));
    if (!grid.is_blocked(v) && !grid.is_pin(v)) result.label_mask[p] = 1.0f;
    if (n_opp[p] > 0) {
      result.label[p] = float(double(n_sel[p]) / double(n_opp[p]));
    }
  }
  result.stats.seconds = timer.seconds();

  // One flush per episode: the search's per-iteration counters stay plain
  // struct fields and only land in the global registry here.
  MctsObs& o = mcts_obs();
  o.episodes.inc();
  o.iterations.add(std::uint64_t(result.stats.iterations));
  o.simulations.add(std::uint64_t(result.stats.simulations));
  o.expansions.add(std::uint64_t(result.stats.expansions));
  o.episode_seconds.observe(result.stats.seconds);
  return result;
}

}  // namespace oar::mcts
