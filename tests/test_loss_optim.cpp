#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optim.hpp"

namespace oar::nn {
namespace {

TEST(BceWithLogits, MatchesManualComputation) {
  const Tensor logits = Tensor::from({0.0f, 2.0f, -3.0f});
  const Tensor targets = Tensor::from({1.0f, 0.0f, 0.5f});
  Tensor grad;
  const double loss = bce_with_logits(logits, targets, grad);

  auto manual = [](double x, double t) {
    const double p = 1.0 / (1.0 + std::exp(-x));
    return -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
  };
  const double expected =
      (manual(0, 1) + manual(2, 0) + manual(-3, 0.5)) / 3.0;
  EXPECT_NEAR(loss, expected, 1e-9);
}

TEST(BceWithLogits, GradientIsSigmoidMinusTarget) {
  const Tensor logits = Tensor::from({0.5f, -1.0f});
  const Tensor targets = Tensor::from({0.0f, 1.0f});
  Tensor grad;
  bce_with_logits(logits, targets, grad);
  auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  EXPECT_NEAR(grad[0], (sigmoid(0.5) - 0.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad[1], (sigmoid(-1.0) - 1.0) / 2.0, 1e-6);
}

TEST(BceWithLogits, ExtremeLogitsStayFinite) {
  const Tensor logits = Tensor::from({80.0f, -80.0f});
  const Tensor targets = Tensor::from({0.0f, 1.0f});
  Tensor grad;
  const double loss = bce_with_logits(logits, targets, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 80.0, 1e-3);
  EXPECT_TRUE(std::isfinite(grad[0]));
}

TEST(BceWithLogits, WeightMasksElements) {
  const Tensor logits = Tensor::from({5.0f, 1.0f});
  const Tensor targets = Tensor::from({0.0f, 1.0f});
  const Tensor weight = Tensor::from({0.0f, 1.0f});
  Tensor grad;
  const double loss = bce_with_logits(logits, targets, grad, &weight);
  // Only the second element contributes.
  const double expected = -std::log(1.0 / (1.0 + std::exp(-1.0)));
  EXPECT_NEAR(loss, expected, 1e-9);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
}

TEST(BceWithLogits, AllZeroWeightsGiveZeroLoss) {
  const Tensor logits = Tensor::from({1.0f});
  const Tensor targets = Tensor::from({1.0f});
  const Tensor weight = Tensor::from({0.0f});
  Tensor grad;
  EXPECT_DOUBLE_EQ(bce_with_logits(logits, targets, grad, &weight), 0.0);
}

TEST(Mse, ValueAndGradient) {
  const Tensor pred = Tensor::from({2.0f, -1.0f});
  const Tensor targets = Tensor::from({0.0f, -1.0f});
  Tensor grad;
  const double loss = mse(pred, targets, grad);
  EXPECT_DOUBLE_EQ(loss, 2.0);  // (4 + 0) / 2
  EXPECT_FLOAT_EQ(grad[0], 2.0f);
  EXPECT_FLOAT_EQ(grad[1], 0.0f);
}

/// One-parameter quadratic f(w) = (w - 3)^2 minimized by each optimizer.
class QuadraticModel : public Module {
 public:
  QuadraticModel() { w_ = Parameter("w", Tensor::from({0.0f})); }
  Tensor forward(const Tensor&) override { return w_.value; }
  Tensor backward(const Tensor&) override { return Tensor::from({0.0f}); }
  void collect_parameters(std::vector<Parameter*>& out) override { out.push_back(&w_); }

  void accumulate_grad() { w_.grad[0] += 2.0f * (w_.value[0] - 3.0f); }
  float w() const { return w_.value[0]; }

 private:
  Parameter w_;
};

TEST(Sgd, ConvergesOnQuadratic) {
  QuadraticModel model;
  Sgd opt(model.parameters(), 0.05, 0.9);
  for (int i = 0; i < 200; ++i) {
    model.accumulate_grad();
    opt.step();
  }
  EXPECT_NEAR(model.w(), 3.0f, 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  QuadraticModel model;
  Adam opt(model.parameters(), 0.1);
  for (int i = 0; i < 500; ++i) {
    model.accumulate_grad();
    opt.step();
  }
  EXPECT_NEAR(model.w(), 3.0f, 1e-2);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  QuadraticModel model;
  Adam opt(model.parameters(), 0.05, 0.9, 0.999, 1e-8, /*weight_decay=*/5.0);
  for (int i = 0; i < 800; ++i) {
    model.accumulate_grad();
    opt.step();
  }
  EXPECT_LT(model.w(), 2.5f);  // decayed below the unregularized optimum
  EXPECT_GT(model.w(), 0.0f);
}

TEST(Optimizer, StepClearsGradients) {
  QuadraticModel model;
  Sgd opt(model.parameters(), 0.01);
  model.accumulate_grad();
  opt.step();
  EXPECT_FLOAT_EQ(model.parameters()[0]->grad[0], 0.0f);
}

TEST(Optimizer, ClipGradNorm) {
  QuadraticModel model;
  Sgd opt(model.parameters(), 0.01);
  model.parameters()[0]->grad[0] = 30.0f;
  const double pre = opt.clip_grad_norm(3.0);
  EXPECT_DOUBLE_EQ(pre, 30.0);
  EXPECT_NEAR(model.parameters()[0]->grad[0], 3.0f, 1e-5);
  // Below the threshold: untouched.
  model.parameters()[0]->grad[0] = 1.0f;
  opt.clip_grad_norm(3.0);
  EXPECT_FLOAT_EQ(model.parameters()[0]->grad[0], 1.0f);
}

}  // namespace
}  // namespace oar::nn
