// Micro-benchmarks (google-benchmark) for the primitive operations behind
// the paper's runtime claims: maze routing, OARMST construction (with the
// redundant-Steiner-removal ablation from DESIGN.md Sec. 6), feature
// encoding, U-Net inference across layout sizes (the "mild growth of
// Steiner-point selection runtime" of Table 3), the actor's eq.-(1) policy,
// and one combinatorial-MCTS search.

#include <benchmark/benchmark.h>

#include "core/oarsmtrl.hpp"

namespace {

using namespace oar;

hanan::HananGrid make_grid(std::int32_t dim, std::int32_t m, std::int32_t pins,
                           std::uint64_t seed = 11) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = spec.v = dim;
  spec.m = m;
  spec.min_pins = spec.max_pins = pins;
  spec.min_obstacles = spec.max_obstacles = std::max(1, dim * dim * m / 40);
  return gen::random_grid(spec, rng);
}

void BM_MazeFlood(benchmark::State& state) {
  const auto grid = make_grid(std::int32_t(state.range(0)), 4, 4);
  route::MazeRouter maze(grid);
  for (auto _ : state) {
    maze.run({grid.pins().front()});
    benchmark::DoNotOptimize(maze.dist(grid.pins().back()));
  }
  state.SetComplexityN(grid.num_vertices());
}
BENCHMARK(BM_MazeFlood)->Arg(16)->Arg(32)->Arg(64)->Complexity(benchmark::oNLogN);

void BM_OarmstBuild(benchmark::State& state) {
  const auto grid = make_grid(24, 4, std::int32_t(state.range(0)));
  route::OarmstRouter router(grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.build(grid.pins()).cost);
  }
}
BENCHMARK(BM_OarmstBuild)->Arg(4)->Arg(8)->Arg(16);

void BM_OarmstRedundancyRemoval(benchmark::State& state) {
  // Ablation: cost of the removal+rebuild passes with 6 Steiner points.
  const auto grid = make_grid(24, 4, 8);
  route::OarmstConfig cfg;
  cfg.remove_redundant_steiner = state.range(0) != 0;
  route::OarmstRouter router(grid, cfg);
  util::Rng rng(3);
  std::vector<hanan::Vertex> steiner;
  while (steiner.size() < 6) {
    const auto v = hanan::Vertex(rng.uniform_int(0, grid.num_vertices() - 1));
    if (!grid.is_blocked(v) && !grid.is_pin(v)) steiner.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.build(grid.pins(), steiner).cost);
  }
}
BENCHMARK(BM_OarmstRedundancyRemoval)->Arg(0)->Arg(1);

void BM_FeatureEncoding(benchmark::State& state) {
  const auto grid = make_grid(std::int32_t(state.range(0)), 4, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hanan::encode_features(grid).data.data());
  }
}
BENCHMARK(BM_FeatureEncoding)->Arg(16)->Arg(32)->Arg(64);

void BM_SelectorInference(benchmark::State& state) {
  // One full Steiner-point selection inference (Table 3's "Spoint select").
  const auto grid = make_grid(std::int32_t(state.range(0)), 4, 6);
  rl::SteinerSelector selector(core::pretrained_selector_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.infer_fsp(grid).front());
  }
  state.SetComplexityN(grid.num_vertices());
}
BENCHMARK(BM_SelectorInference)->Arg(8)->Arg(16)->Arg(32)->Complexity(benchmark::oN);

void BM_ActorPolicyEq1(benchmark::State& state) {
  const auto grid = make_grid(16, 4, 5);
  rl::SteinerSelector selector(core::pretrained_selector_config());
  mcts::ActorCritic ac(selector, grid);
  const auto fsp = ac.fsp({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.policy({}, -1, fsp).size());
  }
}
BENCHMARK(BM_ActorPolicyEq1);

void BM_CombMctsSample(benchmark::State& state) {
  // One full training-sample generation (search tree + label), the unit of
  // the paper's "1.16 s per sample" claim.
  const auto grid = make_grid(8, 2, 4, 21);
  rl::SelectorConfig cfg = core::pretrained_selector_config();
  rl::SteinerSelector selector(cfg);
  mcts::CombMctsConfig mcfg;
  mcfg.iterations_per_move = 24;
  mcfg.max_children = 16;
  for (auto _ : state) {
    mcts::CombMcts search(selector, mcfg);
    benchmark::DoNotOptimize(search.run(grid).label.size());
  }
}
BENCHMARK(BM_CombMctsSample)->Unit(benchmark::kMillisecond);

void BM_SeqMctsSample(benchmark::State& state) {
  // Conventional-MCTS counterpart of BM_CombMctsSample (the 3.48x claim).
  const auto grid = make_grid(8, 2, 4, 21);
  rl::SelectorConfig cfg = core::pretrained_selector_config();
  rl::SteinerSelector selector(cfg);
  mcts::CombMctsConfig mcfg;
  mcfg.iterations_per_move = 24;
  mcfg.max_children = 16;
  for (auto _ : state) {
    mcts::SeqMcts search(selector, mcfg);
    benchmark::DoNotOptimize(search.run(grid).samples.size());
  }
}
BENCHMARK(BM_SeqMctsSample)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
