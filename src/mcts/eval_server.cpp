#include "mcts/eval_server.hpp"

#include <algorithm>
#include <chrono>

#include "hanan/features.hpp"
#include "nn/activations.hpp"
#include "nn/inference.hpp"
#include "obs/metrics.hpp"
#include "util/validate.hpp"

namespace oar::mcts {

namespace {

struct EvalObs {
  obs::Gauge& queue_depth;
  obs::Histogram& batch_occupancy;
  obs::Counter& requests;
  obs::Counter& batches;
  obs::Counter& flush_timeouts;
  obs::Counter& deadline_cancelled;
};

EvalObs& eval_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static EvalObs o{
      reg.gauge("oar_mcts_eval_queue_depth",
                "Leaf evaluations waiting in the EvalServer queue"),
      reg.histogram("oar_mcts_eval_batch_occupancy", obs::pow2_buckets(8),
                    "Same-shape requests fused per EvalServer forward"),
      reg.counter("oar_mcts_eval_requests_total",
                  "Leaf evaluations submitted to the EvalServer"),
      reg.counter("oar_mcts_eval_batches_total",
                  "Batched forwards run by the EvalServer drain thread"),
      reg.counter("oar_mcts_eval_flush_timeouts_total",
                  "Undersized EvalServer batches flushed on timeout"),
      reg.counter("oar_mcts_eval_deadline_cancelled_total",
                  "Leaf evaluations cancelled on an expired request deadline"),
  };
  return o;
}

}  // namespace

void EvalServerConfig::validate() const {
  util::check_field(eval_batch >= 1, "EvalServerConfig", "eval_batch",
                    "be >= 1", eval_batch);
  util::check_field(flush_us >= 0, "EvalServerConfig", "flush_us",
                    "be non-negative", flush_us);
  util::check_field(queue_capacity >= 1, "EvalServerConfig", "queue_capacity",
                    "be >= 1", queue_capacity);
}

EvalServer::EvalServer(rl::SteinerSelector& selector, EvalServerConfig config)
    : selector_(selector), config_(config) {
  config_.validate();
  drain_ = std::thread([this] { drain_loop(); });
}

EvalServer::~EvalServer() { shutdown(/*cancel_pending=*/false); }

std::future<void> EvalServer::submit(
    const hanan::HananGrid& grid, const float* features,
    std::vector<double>& out,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  Request request;
  request.grid = &grid;
  request.features = features;
  request.out = &out;
  request.deadline = deadline;
  std::future<void> fut = request.done.get_future();
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Backpressure: block (never drop) until the queue has room.
    space_cv_.wait(lock, [&] {
      return stopping_ || std::ssize(queue_) < config_.queue_capacity;
    });
    if (stopping_) {
      throw std::runtime_error("EvalServer::submit called after shutdown");
    }
    queue_.push_back(std::move(request));
    ++stats_.requests;
    depth = queue_.size();
    stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth, depth);
  }
  queue_cv_.notify_all();
  EvalObs& o = eval_obs();
  o.requests.inc();
  o.queue_depth.set(double(depth));
  return fut;
}

void EvalServer::shutdown(bool cancel_pending) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    cancel_pending_ = cancel_pending;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (drain_.joinable()) drain_.join();
}

EvalServer::Stats EvalServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void EvalServer::drain_loop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::vector<Request> batch;
    std::vector<Request> expired;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained

      if (stopping_ && cancel_pending_) {
        std::deque<Request> doomed;
        doomed.swap(queue_);
        stats_.cancelled += doomed.size();
        lock.unlock();
        space_cv_.notify_all();
        for (Request& r : doomed) {
          r.done.set_exception(std::make_exception_ptr(EvalCancelled{}));
        }
        continue;  // next wait sees the empty queue and returns
      }

      // Deadline sweep at batch-formation granularity: a queued request
      // whose deadline has already passed is cancelled, never evaluated —
      // its submitter has stopped caring (anytime search past budget) and
      // the forward would only delay live requests.
      const Clock::time_point sweep_now = Clock::now();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline && sweep_now >= *it->deadline) {
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      stats_.deadline_cancelled += expired.size();
      if (queue_.empty()) {
        eval_obs().queue_depth.set(0.0);
        lock.unlock();
        space_cv_.notify_all();  // the sweep freed queue slots
        for (Request& r : expired) {
          r.done.set_exception(std::make_exception_ptr(EvalCancelled{}));
        }
        if (!expired.empty()) {
          eval_obs().deadline_cancelled.add(std::uint64_t(expired.size()));
        }
        continue;
      }

      // Collect same-shape requests in FIFO order; other shapes stay
      // queued (they anchor the next batch).
      const hanan::HananGrid* g0 = queue_.front().grid;
      auto same_shape = [&](const Request& r) {
        return r.grid->h_dim() == g0->h_dim() && r.grid->v_dim() == g0->v_dim() &&
               r.grid->m_dim() == g0->m_dim();
      };
      auto collect = [&] {
        for (auto it = queue_.begin();
             it != queue_.end() && std::ssize(batch) < config_.eval_batch;) {
          if (same_shape(*it)) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      };
      collect();

      // Flush-on-timeout: wait up to flush_us for same-shape stragglers,
      // then run whatever we have so a lone request can never deadlock.
      if (std::ssize(batch) < config_.eval_batch && !stopping_ &&
          config_.flush_us > 0) {
        const auto deadline =
            Clock::now() + std::chrono::microseconds(config_.flush_us);
        while (std::ssize(batch) < config_.eval_batch && !stopping_) {
          if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            collect();
            if (std::ssize(batch) < config_.eval_batch) {
              ++stats_.flush_timeouts;
              eval_obs().flush_timeouts.inc();
            }
            break;
          }
          collect();
        }
      }

      ++stats_.batches;
      if (batch.size() == 1) ++stats_.single_batches;
      stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, batch.size());
      eval_obs().queue_depth.set(double(queue_.size()));
    }
    space_cv_.notify_all();  // collect() freed queue slots
    for (Request& r : expired) {
      r.done.set_exception(std::make_exception_ptr(EvalCancelled{}));
    }
    if (!expired.empty()) {
      eval_obs().deadline_cancelled.add(std::uint64_t(expired.size()));
    }
    run_batch(std::move(batch));
  }
}

void EvalServer::run_batch(std::vector<Request> batch) {
  EvalObs& o = eval_obs();
  o.batches.inc();
  o.batch_occupancy.observe(double(batch.size()));

  try {
    const hanan::HananGrid& g = *batch.front().grid;
    const std::int32_t kC = hanan::kNumFeatureChannels;
    const std::int64_t in_numel =
        std::int64_t(kC) * g.h_dim() * g.v_dim() * g.m_dim();
    nn::UNet3d& net = selector_.net();

    if (selector_.int8_active()) {
      // The quantized engine is single-sample; serve the batch as a loop
      // of int8 forwards.  Each runs the same quantize + integer kernels
      // as SteinerSelector::infer_fsp_into on identical feature bits, so
      // the 1-worker ≡ serial anchor is preserved.
      for (Request& r : batch) {
        const hanan::HananGrid& rg = *r.grid;
        selector_.infer_fsp_from_features(r.features, rg.h_dim(), rg.v_dim(),
                                          rg.m_dim(), *r.out);
      }
      for (Request& r : batch) r.done.set_value();
      return;
    }

    if (batch.size() == 1) {
      // Bitwise single-sample path: identical arithmetic to
      // SteinerSelector::infer_fsp_into on the same feature bits.
      Request& r = batch.front();
      std::vector<double>& out = *r.out;
      if (!net.training()) {
        nn::InferenceScratch& arena = net.inference_scratch();
        arena.rewind();  // infer() never rewinds, the input slot survives
        nn::Tensor& input = arena.push({kC, g.h_dim(), g.v_dim(), g.m_dim()});
        std::copy(r.features, r.features + in_numel, input.data());
        const nn::Tensor& logits = net.infer(input);
        out.resize(std::size_t(logits.numel()));
        nn::sigmoid_into(logits.data(), logits.numel(), out.data());
      } else {
        nn::Tensor input({kC, g.h_dim(), g.v_dim(), g.m_dim()});
        std::copy(r.features, r.features + in_numel, input.data());
        const nn::Tensor logits = net.forward(input);
        out.resize(std::size_t(logits.numel()));
        nn::sigmoid_into(logits.data(), logits.numel(), out.data());
      }
    } else {
      const std::int32_t n = std::int32_t(batch.size());
      batch_input_.reset_shape({n, kC, g.h_dim(), g.v_dim(), g.m_dim()});
      for (std::int32_t i = 0; i < n; ++i) {
        std::copy(batch[std::size_t(i)].features,
                  batch[std::size_t(i)].features + in_numel,
                  batch_input_.data() + std::int64_t(i) * in_numel);
      }
      const nn::Tensor logits = net.forward_batch(batch_input_);  // (N,1,H,V,M)
      const std::int64_t out_numel = logits.numel() / n;
      for (std::int32_t i = 0; i < n; ++i) {
        std::vector<double>& out = *batch[std::size_t(i)].out;
        out.resize(std::size_t(out_numel));
        nn::sigmoid_into(logits.data() + std::int64_t(i) * out_numel, out_numel,
                         out.data());
      }
    }
    for (Request& r : batch) r.done.set_value();
  } catch (...) {
    // A failed forward fails every waiter in the batch instead of hanging it.
    const std::exception_ptr error = std::current_exception();
    for (Request& r : batch) {
      try {
        r.done.set_exception(error);
      } catch (const std::future_error&) {
        // set_value already ran for this request; nothing to fail.
      }
    }
  }
}

}  // namespace oar::mcts
