# Empty compiler generated dependencies file for benchmark_suite.
# This may be replaced when dependencies are built.
