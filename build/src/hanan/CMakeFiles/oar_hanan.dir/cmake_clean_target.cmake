file(REMOVE_RECURSE
  "liboar_hanan.a"
)
