file(REMOVE_RECURSE
  "CMakeFiles/oar_steiner.dir/baselines.cpp.o"
  "CMakeFiles/oar_steiner.dir/baselines.cpp.o.d"
  "CMakeFiles/oar_steiner.dir/candidates.cpp.o"
  "CMakeFiles/oar_steiner.dir/candidates.cpp.o.d"
  "CMakeFiles/oar_steiner.dir/oracle.cpp.o"
  "CMakeFiles/oar_steiner.dir/oracle.cpp.o.d"
  "liboar_steiner.a"
  "liboar_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
