#pragma once

// Evaluation utilities: the ST-to-MST ratio of Figs. 11-12 (routing cost of
// the Steiner tree built from the agent's selected points over the cost of
// the plain spanning tree with no Steiner points), for both one-shot
// (combinatorial) and sequential agents.

#include "rl/selector.hpp"

namespace oar::rl {

struct EvalOptions {
  /// true: the agent is a sequential selector (one inference per point).
  bool sequential = false;
  double seq_stop_threshold = 0.05;
};

struct EvalStats {
  double mean_st_mst_ratio = 0.0;
  double mean_st_cost = 0.0;
  double mean_mst_cost = 0.0;
  double mean_inferences = 0.0;  // network inferences per layout
  double select_seconds = 0.0;   // total Steiner-point selection time
  std::int32_t count = 0;
};

EvalStats evaluate_st_to_mst(SteinerSelector& selector,
                             const std::vector<hanan::HananGrid>& grids,
                             EvalOptions options = {});

}  // namespace oar::rl
