// Full training pipeline (paper Sec. 3.5-3.6): combinatorial-MCTS sample
// generation, 16x augmentation, mixed-size curriculum training — scaled to
// CPU minutes instead of the paper's 159 GPU-hours — and checkpointing of
// the resulting selector for the benchmarks.
//
// Usage: train_selector [stages] [layouts_per_size] [output_path]
//   defaults: 6 stages, 8 layouts per size, <repo>/models/pretrained.bin

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/oarsmtrl.hpp"

int main(int argc, char** argv) {
  using namespace oar;

  const int stages = argc > 1 ? std::atoi(argv[1]) : 6;
  const int layouts = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string out_path =
      argc > 3 ? argv[3] : core::default_checkpoint_path();

  auto selector =
      std::make_shared<rl::SteinerSelector>(core::pretrained_selector_config());
  std::printf("selector: %lld parameters\n",
              static_cast<long long>(selector->net().num_parameters()));
  // Resume from an existing checkpoint at the output path, so repeated
  // invocations keep improving the same model.
  if (std::ifstream(out_path).good() && selector->load(out_path)) {
    std::printf("resumed from %s\n", out_path.c_str());
  }

  rl::TrainConfig config;
  // Scaled-down mixed-size schedule (paper: {16,24,32}^2 x {4,6,8,10}).
  config.sizes = {{8, 8, 2}, {10, 10, 3}, {12, 12, 3}};
  config.layouts_per_size = layouts;   // paper: 1000
  config.stages = stages;              // paper: 32
  config.batch_size = 32;              // paper: 256
  config.lr = 2e-3;
  config.epochs_per_stage = 3;         // paper: 4
  config.augment_count = 16;           // paper: 16
  // Paper alpha: 2000 for a 16x16x4 layout, scaled proportionally to the
  // layout size (Sec. 3.4); the trainer applies scaled_iterations per grid.
  config.mcts.iterations_per_move = 2000;
  // Fixed-pin curriculum over 2/3 of the stages (paper: 4 of 32 stages,
  // but our total stage budget is far smaller, and the curriculum is what
  // bootstraps the selector at CPU scale).
  config.curriculum_stages = std::max(1, 2 * stages / 3);
  config.min_pins = 3;
  config.max_pins = 6;
  config.seed = 20240623;

  // Held-out evaluation layouts for the ST-to-MST ratio (Figs. 11-12).
  util::Rng eval_rng(777);
  std::vector<hanan::HananGrid> eval_grids;
  for (int i = 0; i < 32; ++i) {
    const auto spec = rl::training_spec({12, 12, 3}, 0.10, 5, 6);
    eval_grids.push_back(gen::random_grid(spec, eval_rng));
  }

  const auto before = rl::evaluate_st_to_mst(*selector, eval_grids);
  std::printf("before training: ST/MST = %.4f\n\n", before.mean_st_mst_ratio);

  rl::CombTrainer trainer(*selector, config);
  std::printf("%5s %8s %9s %9s %10s %10s %9s\n", "stage", "layouts", "samples",
              "loss", "gen[s]", "fit[s]", "ST/MST");
  for (int s = 0; s < stages; ++s) {
    const rl::StageReport r = trainer.run_stage();
    const auto eval = rl::evaluate_st_to_mst(*selector, eval_grids);
    std::printf("%5d %8d %9d %9.5f %10.1f %10.1f %9.4f\n", r.stage, r.raw_samples,
                r.train_samples, r.mean_loss, r.sample_gen_seconds,
                r.train_seconds, eval.mean_st_mst_ratio);
  }

  if (selector->save(out_path)) {
    std::printf("\ncheckpoint written to %s\n", out_path.c_str());
  } else {
    std::printf("\nfailed to write checkpoint to %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
