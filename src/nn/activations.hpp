#pragma once

// Element-wise activation layers.

#include "nn/module.hpp"

namespace oar::nn {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override {
    mask_.assign(std::size_t(input.numel()), 0);
    Tensor out = input;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      if (out[i] > 0.0f) {
        mask_[std::size_t(i)] = 1;
      } else {
        out[i] = 0.0f;
      }
    }
    return out;
  }

  Tensor backward(const Tensor& grad_output) override {
    assert(std::size_t(grad_output.numel()) == mask_.size());
    Tensor grad = grad_output;
    for (std::int64_t i = 0; i < grad.numel(); ++i) {
      if (!mask_[std::size_t(i)]) grad[i] = 0.0f;
    }
    return grad;
  }

 private:
  std::vector<std::uint8_t> mask_;
};

class Sigmoid : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Stateless helper (used at inference where no backward is needed).
  static float apply(float x);

 private:
  Tensor output_;
};

/// Bulk sigmoid readout over raw storage: out[i] = sigmoid(x[i]), bitwise
/// identical to Sigmoid::apply per element.  One pass over the logits
/// buffer replaces the per-element Tensor::operator[] loop the selector
/// and the serving layer used to run.
void sigmoid_into(const float* x, std::int64_t n, double* out);

}  // namespace oar::nn
