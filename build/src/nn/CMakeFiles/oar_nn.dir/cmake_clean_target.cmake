file(REMOVE_RECURSE
  "liboar_nn.a"
)
