// int8 quantized inference battery (DESIGN.md §17): SIMD kernels vs the
// scalar reference across remainder widths / unaligned bases / saturation
// extremes, quantize round-trips, calibrator + engine properties, the
// incremental first-layer accumulator bitwise invariant, and the accuracy
// gate's fail-closed behavior.

#include "nn/quant/quantize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gen/random_layout.hpp"
#include "nn/quant/simd.hpp"
#include "rl/evaluate.hpp"
#include "rl/selector.hpp"
#include "serve/batched_selector.hpp"
#include "util/rng.hpp"

namespace oar {
namespace {

using nn::simd::Kernels;
using nn::simd::Level;

// ---------------------------------------------------------------------------
// SimdKernel — every vector level must reproduce the scalar reference bit
// for bit, and the scalar reference must match a naive dense convolution.
// ---------------------------------------------------------------------------

std::int32_t ceil4(std::int32_t c) { return (c + 3) & ~3; }

struct ConvCase {
  std::int32_t d0, d1, d2, ic, oc;
};

/// Pack dense weights w[oc][ic][tap] into the simd.hpp layout.
std::vector<std::int8_t> pack_weights(const std::vector<std::int32_t>& dense,
                                      std::int32_t taps, std::int32_t ic,
                                      std::int32_t oc) {
  const std::int32_t G = ceil4(ic) / 4;
  std::vector<std::int8_t> wp(std::size_t(taps) * G * oc * 4, 0);
  for (std::int32_t o = 0; o < oc; ++o) {
    for (std::int32_t i = 0; i < ic; ++i) {
      for (std::int32_t t = 0; t < taps; ++t) {
        wp[std::size_t(((std::int64_t(t) * G + i / 4) * oc + o) * 4 + i % 4)] =
            std::int8_t(dense[std::size_t((o * ic + i) * taps + t)]);
      }
    }
  }
  return wp;
}

/// Naive NHWC 3x3x3 "same" convolution, written independently of the
/// kernel under test.
void naive_conv3(const std::vector<std::uint8_t>& act,
                 const std::vector<std::int32_t>& dense, const ConvCase& c,
                 std::vector<std::int32_t>& out) {
  const std::int32_t icp = ceil4(c.ic);
  out.assign(std::size_t(c.d0) * c.d1 * c.d2 * c.oc, 0);
  for (std::int32_t o0 = 0; o0 < c.d0; ++o0) {
    for (std::int32_t o1 = 0; o1 < c.d1; ++o1) {
      for (std::int32_t o2 = 0; o2 < c.d2; ++o2) {
        const std::int64_t vox = (std::int64_t(o0) * c.d1 + o1) * c.d2 + o2;
        for (std::int32_t oc = 0; oc < c.oc; ++oc) {
          std::int64_t s = 0;
          for (std::int32_t k0 = 0; k0 < 3; ++k0) {
            for (std::int32_t k1 = 0; k1 < 3; ++k1) {
              for (std::int32_t k2 = 0; k2 < 3; ++k2) {
                const std::int32_t z0 = o0 + k0 - 1, z1 = o1 + k1 - 1,
                                   z2 = o2 + k2 - 1;
                if (z0 < 0 || z0 >= c.d0 || z1 < 0 || z1 >= c.d1 || z2 < 0 ||
                    z2 >= c.d2) {
                  continue;
                }
                const std::int64_t av =
                    ((std::int64_t(z0) * c.d1 + z1) * c.d2 + z2) * icp;
                const std::int32_t tap = (k0 * 3 + k1) * 3 + k2;
                for (std::int32_t i = 0; i < c.ic; ++i) {
                  s += std::int64_t(act[std::size_t(av + i)]) *
                       dense[std::size_t((oc * c.ic + i) * 27 + tap)];
                }
              }
            }
          }
          out[std::size_t(vox * c.oc + oc)] = std::int32_t(s);
        }
      }
    }
  }
}

/// Activations in an oversized buffer at +1 byte so kernels also run from
/// an unaligned base.
struct ActBuffer {
  std::vector<std::uint8_t> storage;
  std::uint8_t* data = nullptr;

  ActBuffer(std::size_t n, bool unaligned) : storage(n + 1, 0) {
    data = storage.data() + (unaligned ? 1 : 0);
  }
};

void fill_random(std::uint8_t* act, std::size_t n, std::int32_t ic,
                 std::int32_t icp, util::Rng& rng) {
  for (std::size_t v = 0; v < n / std::size_t(icp); ++v) {
    for (std::int32_t c = 0; c < icp; ++c) {
      // Padding lanes get garbage on purpose: the weight pack zeros them,
      // so they must not affect any level.
      act[v * std::size_t(icp) + std::size_t(c)] =
          c < ic ? std::uint8_t(rng.next() % 128)
                 : std::uint8_t(rng.next() % 256);
    }
  }
}

TEST(SimdKernel, ScalarMatchesNaiveConv3) {
  const Kernels* scalar = nn::simd::kernels_for(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  util::Rng rng(7);
  for (const ConvCase& c : {ConvCase{3, 4, 2, 5, 3}, ConvCase{2, 2, 2, 7, 8},
                            ConvCase{4, 3, 3, 4, 6}, ConvCase{1, 6, 1, 9, 2}}) {
    const std::int32_t icp = ceil4(c.ic);
    const std::size_t n = std::size_t(c.d0) * c.d1 * c.d2 * icp;
    ActBuffer act(n, false);
    fill_random(act.data, n, c.ic, icp, rng);
    std::vector<std::int32_t> dense(std::size_t(c.oc) * c.ic * 27);
    for (auto& w : dense) w = std::int32_t(rng.next() % 256) - 128;
    const std::vector<std::int8_t> wp = pack_weights(dense, 27, c.ic, c.oc);

    std::vector<std::int32_t> expect;
    naive_conv3(act.storage, dense, c, expect);  // storage: aligned base
    std::vector<std::int32_t> got(expect.size(), -1);
    scalar->conv3_nhwc(act.data, c.d0, c.d1, c.d2, icp, wp.data(), c.oc,
                       got.data());
    EXPECT_EQ(expect, got) << c.d0 << "x" << c.d1 << "x" << c.d2 << " ic="
                           << c.ic << " oc=" << c.oc;
  }
}

TEST(SimdKernel, VectorLevelsBitwiseEqualScalar) {
  const Kernels* scalar = nn::simd::kernels_for(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  util::Rng rng(11);
  const std::int32_t ics[] = {1, 3, 4, 5, 7, 8, 9, 12};
  const std::int32_t ocs[] = {1, 2, 5, 8, 9, 16, 17, 24};
  // D1 >= 6 reaches the four-row quad path (plus remainder rows when
  // (D1 - 2) % 4 != 0); the small shapes keep the border/remainder-only
  // code honest.
  const ConvCase dims[] = {{1, 1, 1, 0, 0},
                           {2, 3, 4, 0, 0},
                           {3, 2, 5, 0, 0},
                           {2, 6, 3, 0, 0},
                           {1, 8, 2, 0, 0},
                           {2, 9, 4, 0, 0}};

  std::int32_t levels_tested = 0;
  for (const Level level : {Level::kAvx2, Level::kAvx2Vnni, Level::kNeon}) {
    const Kernels* k = nn::simd::kernels_for(level);
    if (k == nullptr) continue;  // unsupported on this machine
    ++levels_tested;
    for (const ConvCase& d : dims) {
      for (const std::int32_t ic : ics) {
        for (const std::int32_t oc : ocs) {
          const std::int32_t icp = ceil4(ic);
          const std::int64_t S = std::int64_t(d.d0) * d.d1 * d.d2;
          const std::size_t n = std::size_t(S) * std::size_t(icp);
          ActBuffer act(n, /*unaligned=*/(ic + oc) % 2 == 1);
          fill_random(act.data, n, ic, icp, rng);
          std::vector<std::int32_t> dense(std::size_t(oc) * ic * 27);
          for (auto& w : dense) w = std::int32_t(rng.next() % 256) - 128;
          const std::vector<std::int8_t> wp = pack_weights(dense, 27, ic, oc);

          std::vector<std::int32_t> ref(std::size_t(S) * oc, 0);
          std::vector<std::int32_t> got(std::size_t(S) * oc, 1);
          scalar->conv3_nhwc(act.data, d.d0, d.d1, d.d2, icp, wp.data(), oc,
                             ref.data());
          k->conv3_nhwc(act.data, d.d0, d.d1, d.d2, icp, wp.data(), oc,
                        got.data());
          ASSERT_EQ(ref, got) << nn::simd::level_name(level) << " conv3 ic="
                              << ic << " oc=" << oc;

          // conv1 on the tap-0 slice of a fresh 1x1 pack.
          std::vector<std::int32_t> dense1(std::size_t(oc) * ic);
          for (auto& w : dense1) w = std::int32_t(rng.next() % 256) - 128;
          const std::vector<std::int8_t> wp1 = pack_weights(dense1, 1, ic, oc);
          scalar->conv1_nhwc(act.data, S, icp, wp1.data(), oc, ref.data());
          k->conv1_nhwc(act.data, S, icp, wp1.data(), oc, got.data());
          ASSERT_EQ(ref, got) << nn::simd::level_name(level) << " conv1 ic="
                              << ic << " oc=" << oc;
        }
      }
    }
  }
  // On x86 at least AVX2 must be exercised in CI images; don't fail on
  // exotic hosts, but record coverage.
  RecordProperty("vector_levels_tested", levels_tested);
}

TEST(SimdKernel, SaturationExtremesMatchScalar) {
  // act = 127 everywhere, weights = -128 / +127: the maddubs pair sums hit
  // their extreme magnitudes (2 * 127 * 128 = 32512) without saturating.
  const Kernels* scalar = nn::simd::kernels_for(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  const ConvCase c{3, 3, 2, 8, 16};
  const std::int32_t icp = ceil4(c.ic);
  const std::int64_t S = std::int64_t(c.d0) * c.d1 * c.d2;
  ActBuffer act(std::size_t(S) * icp, false);
  std::memset(act.data, 127, std::size_t(S) * icp);
  for (const std::int32_t wval : {-128, 127}) {
    std::vector<std::int32_t> dense(std::size_t(c.oc) * c.ic * 27, wval);
    const std::vector<std::int8_t> wp = pack_weights(dense, 27, c.ic, c.oc);
    std::vector<std::int32_t> expect;
    std::vector<std::uint8_t> plain(act.data, act.data + std::size_t(S) * icp);
    naive_conv3(plain, dense, c, expect);
    std::vector<std::int32_t> ref(expect.size(), 0);
    scalar->conv3_nhwc(act.data, c.d0, c.d1, c.d2, icp, wp.data(), c.oc,
                       ref.data());
    ASSERT_EQ(expect, ref);
    for (const Level level : {Level::kAvx2, Level::kAvx2Vnni, Level::kNeon}) {
      const Kernels* k = nn::simd::kernels_for(level);
      if (k == nullptr) continue;
      std::vector<std::int32_t> got(expect.size(), 0);
      k->conv3_nhwc(act.data, c.d0, c.d1, c.d2, icp, wp.data(), c.oc,
                    got.data());
      EXPECT_EQ(expect, got) << nn::simd::level_name(level) << " w=" << wval;
    }
  }
}

TEST(SimdKernel, ChooseLevelPolicy) {
  using nn::simd::choose_level;
  // Force-scalar wins over everything.
  EXPECT_EQ(choose_level("1", "vnni", true, true, false), Level::kScalar);
  EXPECT_EQ(choose_level("yes", nullptr, true, false, false), Level::kScalar);
  // "0" and unset are not forcing.
  EXPECT_EQ(choose_level("0", nullptr, true, false, false), Level::kAvx2);
  EXPECT_EQ(choose_level(nullptr, nullptr, true, true, false),
            Level::kAvx2Vnni);
  EXPECT_EQ(choose_level(nullptr, nullptr, false, false, true), Level::kNeon);
  EXPECT_EQ(choose_level(nullptr, nullptr, false, false, false),
            Level::kScalar);
  // Explicit requests, honored only when supported.
  EXPECT_EQ(choose_level(nullptr, "scalar", true, true, false), Level::kScalar);
  EXPECT_EQ(choose_level(nullptr, "avx2", true, true, false), Level::kAvx2);
  EXPECT_EQ(choose_level(nullptr, "vnni", true, false, false), Level::kAvx2);
  EXPECT_EQ(choose_level(nullptr, "bogus", true, true, false),
            Level::kAvx2Vnni);
  // dispatch() always yields a usable table.
  EXPECT_NE(nn::simd::kernels_for(nn::simd::dispatch_level()), nullptr);
}

// ---------------------------------------------------------------------------
// QuantPack — quantize/dequantize round-trip properties.
// ---------------------------------------------------------------------------

TEST(QuantPack, RoundTripWithinHalfStep) {
  util::Rng rng(3);
  for (std::int32_t trial = 0; trial < 50; ++trial) {
    const float mx = 0.01f + 4.0f * float(rng.uniform());
    const float inv = 127.0f / mx, scale = mx / 127.0f;
    for (std::int32_t i = 0; i <= 100; ++i) {
      const float x = mx * float(i) / 100.0f;
      const std::uint8_t q = nn::quant::quantize_u8(x, inv);
      const float back = nn::quant::dequantize_u8(q, scale);
      EXPECT_LE(std::abs(back - x), scale * 0.5f + 1e-6f)
          << "x=" << x << " max=" << mx;
    }
    // Out-of-range clamps.
    EXPECT_EQ(nn::quant::quantize_u8(mx * 2.0f, inv), 127);
    EXPECT_EQ(nn::quant::quantize_u8(-1.0f, inv), 0);
    EXPECT_EQ(nn::quant::quantize_u8(0.0f, inv), 0);
    EXPECT_EQ(nn::quant::quantize_u8(mx, inv), 127);
  }
}

TEST(QuantPack, QuantizeIsMonotone) {
  const float inv = 127.0f / 2.5f;
  std::uint8_t prev = 0;
  for (std::int32_t i = 0; i <= 1000; ++i) {
    const std::uint8_t q = nn::quant::quantize_u8(2.5f * float(i) / 1000.0f, inv);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

// ---------------------------------------------------------------------------
// Calibrator / engine / accumulator / gate on real selectors.
// ---------------------------------------------------------------------------

rl::SelectorConfig tiny_config(std::int32_t depth = 1) {
  rl::SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = depth;
  cfg.unet.seed = 11;
  return cfg;
}

hanan::HananGrid small_grid(std::uint64_t seed, std::int32_t h = 6,
                            std::int32_t v = 6, std::int32_t m = 2) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = h;
  spec.v = v;
  spec.m = m;
  spec.min_pins = 4;
  spec.max_pins = 5;
  spec.min_obstacles = 2;
  spec.max_obstacles = 3;
  return gen::random_grid(spec, rng);
}

std::vector<float> encode_floats(const hanan::HananGrid& grid,
                                 const std::vector<hanan::Vertex>& pins) {
  std::vector<float> f(std::size_t(hanan::kNumFeatureChannels) * grid.h_dim() *
                       grid.v_dim() * grid.m_dim());
  hanan::encode_features_into(grid, pins, f.data());
  return f;
}

TEST(QuantCalibrator, ThrowsWithoutSamples) {
  rl::SteinerSelector selector(tiny_config());
  nn::quant::QuantCalibrator cal(selector.net());
  EXPECT_EQ(cal.samples(), 0);
  EXPECT_THROW((void)cal.finish(), std::logic_error);
}

TEST(QuantCalibrator, EmitsWiredPack) {
  rl::SteinerSelector selector(tiny_config(2));
  const hanan::HananGrid grid = small_grid(21, 8, 8, 3);
  nn::quant::QuantCalibrator cal(selector.net());
  const std::vector<float> f = encode_floats(grid, {});
  cal.observe(f.data(), grid.h_dim(), grid.v_dim(), grid.m_dim());
  EXPECT_EQ(cal.samples(), 1);
  auto engine = cal.finish();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->level(), nn::simd::dispatch_level());
  EXPECT_EQ(engine->input_icp(), 8);  // 7 channels padded to 8
  // Pins exist in the calibration layout, so channel 0 spans [0, 1] and a
  // pin flip quantizes to full scale.
  EXPECT_EQ(engine->quantized_one(0), 127);
  EXPECT_EQ(engine->pin_delta().size(),
            std::size_t(27) * std::size_t(engine->first_layer_oc()));
}

TEST(QuantEngine, Int8TracksFp32) {
  rl::SelectorConfig cfg = tiny_config(2);
  rl::SteinerSelector selector(cfg);
  const hanan::HananGrid grid = small_grid(33, 10, 10, 3);

  const std::vector<double> fp32 = selector.infer_fsp(grid);
  selector.calibrate_int8({&grid});
  ASSERT_TRUE(selector.int8_active());
  const std::vector<double> int8 = selector.infer_fsp(grid);
  ASSERT_EQ(fp32.size(), int8.size());
  double max_diff = 0.0, mean_diff = 0.0;
  for (std::size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_TRUE(std::isfinite(int8[i]));
    EXPECT_GE(int8[i], 0.0);
    EXPECT_LE(int8[i], 1.0);
    const double d = std::abs(int8[i] - fp32[i]);
    max_diff = std::max(max_diff, d);
    mean_diff += d;
  }
  mean_diff /= double(fp32.size());
  EXPECT_LT(max_diff, 0.1) << "int8 diverged from fp32";
  EXPECT_LT(mean_diff, 0.02);
}

TEST(QuantEngine, IncrementalAccumulatorBitwiseEqualsFromScratch) {
  rl::SteinerSelector selector(tiny_config(2));
  const hanan::HananGrid grid_a = small_grid(5, 8, 8, 2);
  const hanan::HananGrid grid_b = small_grid(6, 7, 9, 3);
  selector.calibrate_int8({&grid_a, &grid_b});
  ASSERT_TRUE(selector.int8_active());

  util::Rng rng(99);
  std::vector<double> via_patch, from_scratch;
  for (std::int32_t episode = 0; episode < 24; ++episode) {
    // Alternate grids to exercise accumulator rebuilds mid-stream.
    const hanan::HananGrid& grid = (episode % 5 == 4) ? grid_b : grid_a;
    // Random pin deltas, intentionally allowing duplicates and existing
    // base pins (set semantics must keep them exact).
    std::vector<hanan::Vertex> extra;
    const std::int32_t n_extra = std::int32_t(rng.next() % 5);
    for (std::int32_t i = 0; i < n_extra; ++i) {
      extra.push_back(
          hanan::Vertex(rng.uniform_int(0, grid.num_vertices() - 1)));
    }
    if (n_extra > 2) extra.push_back(extra.front());     // duplicate
    if (episode % 3 == 0 && !grid.pins().empty()) {
      extra.push_back(grid.pins().front());              // base pin
    }

    // Patched incremental path (selector caches the first-layer state).
    selector.infer_fsp_into(grid, extra, via_patch);
    // From-scratch path on identical feature bits.
    const std::vector<float> f = encode_floats(grid, extra);
    selector.int8_engine()->infer_fsp_from_features(
        f.data(), grid.h_dim(), grid.v_dim(), grid.m_dim(), from_scratch);

    ASSERT_EQ(via_patch.size(), from_scratch.size());
    for (std::size_t i = 0; i < via_patch.size(); ++i) {
      ASSERT_EQ(via_patch[i], from_scratch[i])
          << "episode " << episode << " vertex " << i << " — incremental "
          << "accumulator diverged bitwise";
    }
  }
}

TEST(QuantEngine, ScratchStopsGrowingOnceWarm) {
  rl::SteinerSelector selector(tiny_config(2));
  const hanan::HananGrid grid = small_grid(12, 9, 9, 3);
  selector.calibrate_int8({&grid});
  std::vector<double> out;
  for (std::int32_t i = 0; i < 3; ++i) {
    selector.infer_fsp_into(grid, {grid.pins().empty() ? 0 : 1}, out);
  }
  const std::uint64_t warm = selector.int8_engine()->scratch_grow_events();
  for (std::int32_t i = 0; i < 10; ++i) {
    selector.infer_fsp_into(grid, {hanan::Vertex(i)}, out);
  }
  EXPECT_EQ(selector.int8_engine()->scratch_grow_events(), warm)
      << "engine allocated after warmup";
}

TEST(QuantEngine, WeightReloadInvalidatesPack) {
  rl::SteinerSelector selector(tiny_config());
  const hanan::HananGrid grid = small_grid(17);
  selector.calibrate_int8({&grid});
  ASSERT_NE(selector.int8_engine(), nullptr);
  ASSERT_TRUE(selector.int8_active());

  const std::string path = "test_quant_reload.bin";
  ASSERT_TRUE(selector.save(path));
  ASSERT_TRUE(selector.load(path));
  std::remove(path.c_str());

  EXPECT_EQ(selector.int8_engine(), nullptr);
  EXPECT_FALSE(selector.int8_active());
  // fsp queries silently serve fp32 again.
  const std::vector<double> fsp = selector.infer_fsp(grid);
  EXPECT_EQ(fsp.size(), std::size_t(grid.num_vertices()));
}

TEST(QuantEngine, BatchedSelectorServesInt8) {
  rl::SteinerSelector selector(tiny_config());
  const hanan::HananGrid g1 = small_grid(41, 6, 6, 2);
  const hanan::HananGrid g2 = small_grid(42, 6, 6, 2);
  selector.calibrate_int8({&g1, &g2});
  ASSERT_TRUE(selector.int8_active());

  const auto batched = serve::batched_fsp(selector, {&g1, &g2});
  ASSERT_EQ(batched.size(), 2u);
  const std::vector<double> solo1 = selector.infer_fsp(g1);
  const std::vector<double> solo2 = selector.infer_fsp(g2);
  EXPECT_EQ(batched[0], solo1);
  EXPECT_EQ(batched[1], solo2);
}

TEST(Int8Gate, ThrowsWithoutEngine) {
  rl::SteinerSelector selector(tiny_config());
  EXPECT_THROW((void)rl::evaluate_int8_gate(selector, {}), std::logic_error);
}

TEST(Int8Gate, LenientThresholdsPass) {
  rl::SelectorConfig cfg = tiny_config();
  cfg.infer.int8_min_agreement = 0.0;
  cfg.infer.int8_max_cost_ratio = 1e9;
  rl::SteinerSelector selector(cfg);
  std::vector<hanan::HananGrid> grids;
  grids.push_back(small_grid(51));
  grids.push_back(small_grid(52));
  selector.calibrate_int8({&grids[0], &grids[1]});

  const rl::Int8GateReport report = rl::evaluate_int8_gate(selector, grids);
  EXPECT_GT(report.count, 0);
  EXPECT_TRUE(report.passed);
  EXPECT_FALSE(report.fell_back);
  EXPECT_TRUE(selector.int8_active());  // stayed on int8
  EXPECT_GE(report.mean_agreement, 0.0);
  EXPECT_GT(report.mean_cost_ratio, 0.0);
}

TEST(Int8Gate, EmptySuiteFailsClosed) {
  rl::SteinerSelector selector(tiny_config());
  const hanan::HananGrid grid = small_grid(61);
  selector.calibrate_int8({&grid});
  ASSERT_TRUE(selector.int8_active());

  // No usable layouts -> no evidence -> the gate fails and (fallback on)
  // the selector drops to fp32.
  const rl::Int8GateReport report = rl::evaluate_int8_gate(selector, {});
  EXPECT_EQ(report.count, 0);
  EXPECT_FALSE(report.passed);
  EXPECT_TRUE(report.fell_back);
  EXPECT_FALSE(selector.int8_active());
  EXPECT_NE(selector.int8_engine(), nullptr);  // pack retained for retry
}

}  // namespace
}  // namespace oar
