#pragma once

// EvalServer: a process-local batched inference server for tree-parallel
// MCTS (DESIGN.md §15, the qalloczero InferenceServer architecture).
//
// K search workers produce leaf feature volumes (each worker encodes its
// own state through a private hanan::FeatureCache) and block on a future;
// one drain thread groups queued same-shape requests into micro-batches of
// up to `eval_batch`, runs ONE network pass per batch, and completes the
// futures with per-request fsp (sigmoid probabilities in priority order).
//
// Contracts:
//   * Batch of one runs the single-sample inference engine (UNet3d::infer
//     on the selector's arena), so its output is BITWISE identical to the
//     serial selector path — the anchor of the single-worker-equals-serial
//     property of ParallelCombMcts.  Batches of two or more run
//     Module::forward_batch (GEMM kernels) and match singles to the
//     serving layer's established tolerance, not bitwise.
//   * The queue is bounded: submit() blocks (never drops) while
//     `queue_capacity` requests are waiting — backpressure, so a fast
//     producer cannot grow memory without bound.
//   * Flush-on-timeout: the drain thread waits at most `flush_us` for
//     same-shape stragglers before running an undersized batch, so a lone
//     request always completes — no straggler can deadlock a worker.
//     While it waits for shape-A stragglers it leaves other shapes queued.
//   * Shutdown is clean: the destructor (or shutdown(false)) drains every
//     pending request to completion; shutdown(true) instead cancels
//     pending requests by failing their futures with EvalCancelled.
//     Either way no future is leaked and no worker hangs.
//   * Deadline cancellation (SLO serving, DESIGN.md §16): a request
//     submitted with a deadline that has expired by the time the drain
//     thread would batch it is failed with EvalCancelled instead of
//     evaluated — an anytime search past its budget stops paying for
//     forwards nobody will use.  Requests without a deadline are never
//     cancelled except by shutdown(true).
//
// Thread safety: submit() may be called from any number of threads.  The
// selector is touched ONLY by the drain thread (the network forward caches
// and the inference arena are single-threaded by contract).  A request's
// feature pointer and output vector must stay valid until its future
// resolves; workers that block on get() right away satisfy this for free.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hanan/hanan_grid.hpp"
#include "rl/selector.hpp"

namespace oar::mcts {

/// Failing state of a future whose request was cancelled by shutdown(true).
struct EvalCancelled : std::runtime_error {
  EvalCancelled() : std::runtime_error("EvalServer: request cancelled by shutdown") {}
};

struct EvalServerConfig {
  /// Maximum same-shape requests fused into one batched forward.
  std::int32_t eval_batch = 8;
  /// How long the drain thread waits for same-shape stragglers before
  /// running an undersized batch (flush-on-timeout).
  std::int64_t flush_us = 200;
  /// Bounded-queue capacity; submit() blocks while this many requests wait.
  std::int32_t queue_capacity = 256;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class EvalServer {
 public:
  /// `selector` must outlive the server and is used exclusively by the
  /// drain thread.  The caller must not run its own forwards on it while
  /// the server is live.
  explicit EvalServer(rl::SteinerSelector& selector, EvalServerConfig config = {});
  /// Drains every pending request (shutdown(false)) and joins.
  ~EvalServer();

  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  /// Enqueue one leaf evaluation.  `features` points at the encoded
  /// kNumFeatureChannels * H * V * M volume for `grid` (worker-encoded,
  /// e.g. via hanan::FeatureCache::encode_into); `out` receives fsp in
  /// priority order when the future resolves.  Both must outlive the
  /// future.  Blocks while the queue is full; throws std::runtime_error
  /// after shutdown.  With a `deadline`, the drain thread fails the future
  /// with EvalCancelled instead of evaluating it once the deadline has
  /// expired (anytime-search cancellation).
  std::future<void> submit(
      const hanan::HananGrid& grid, const float* features,
      std::vector<double>& out,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// Stop accepting requests; `cancel_pending` fails queued futures with
  /// EvalCancelled instead of evaluating them.  Idempotent, joins the
  /// drain thread.
  void shutdown(bool cancel_pending = false);

  /// Point-in-time counters (test/diagnostic hook; exact once quiescent).
  struct Stats {
    std::uint64_t requests = 0;        // submitted
    std::uint64_t batches = 0;         // forwards run (any size)
    std::uint64_t single_batches = 0;  // batches that ran the bitwise path
    std::uint64_t max_batch = 0;       // largest batch fused so far
    std::uint64_t flush_timeouts = 0;  // undersized batches run on timeout
    std::uint64_t cancelled = 0;       // futures failed by shutdown(true)
    std::uint64_t deadline_cancelled = 0;  // failed on an expired deadline
    std::uint64_t peak_queue_depth = 0;
  };
  Stats stats() const;

  const EvalServerConfig& config() const { return config_; }

 private:
  struct Request {
    const hanan::HananGrid* grid = nullptr;
    const float* features = nullptr;
    std::vector<double>* out = nullptr;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::promise<void> done;
  };

  void drain_loop();
  /// Runs one micro-batch; every promise is resolved (value or exception).
  void run_batch(std::vector<Request> batch);

  rl::SteinerSelector& selector_;
  EvalServerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  // drain thread: work or stop
  std::condition_variable space_cv_;  // producers: queue below capacity
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool cancel_pending_ = false;
  Stats stats_;

  nn::Tensor batch_input_;  // (N, C, H, V, M) staging, high-water retained
  std::thread drain_;
};

}  // namespace oar::mcts
