# Empty compiler generated dependencies file for oar_rl.
# This may be replaced when dependencies are built.
