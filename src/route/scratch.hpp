#pragma once

// Reusable per-thread scratch state for the OARMST routing core.
//
// Every OarmstRouter::build used to construct a fresh MazeRouter — four
// O(V) arrays — per call, and the MCTS critic calls build once per tree
// node, so the allocator dominated the critic loop.  A RouterScratch owns
// one MazeRouter plus the small work vectors of the Prim construction and
// is reused across builds; the epoch stamping inside MazeRouter makes the
// reuse safe across *different grids* too (stale stamps never match a new
// epoch, and the arrays only ever grow).
//
// Threading contract: a RouterScratch is NOT thread safe and must not be
// shared between concurrently running builds.  Either hold one per worker
// (ActorCritic does) or use local_router_scratch(), which hands out one
// scratch per thread.  OarmstRouter itself stays const/stateless, so one
// router instance may be shared across threads as long as each call uses
// its own scratch.

#include <cstdint>
#include <vector>

#include "route/maze.hpp"
#include "route/route_tree.hpp"

namespace oar::route {

class RouterScratch {
 public:
  RouterScratch() = default;
  RouterScratch(const RouterScratch&) = delete;
  RouterScratch& operator=(const RouterScratch&) = delete;

  /// The pooled maze router, (re)bound to `grid`.  Callers must start a
  /// new search (begin/run) before reading distances.
  MazeRouter& maze(const HananGrid& grid) {
    maze_.bind(grid);
    return maze_;
  }

 private:
  friend class OarmstRouter;

  /// Epoch-stamped membership marks over grid vertices (replaces the
  /// per-build unordered_sets).  next_mark() returns a fresh stamp value;
  /// a vertex is a member iff mark_[v] == stamp.
  std::uint32_t next_mark(std::size_t num_vertices) {
    if (mark_.size() < num_vertices) mark_.resize(num_vertices, 0u);
    ++mark_stamp_;
    if (mark_stamp_ == 0) {  // stamp wrap-around: hard reset
      std::fill(mark_.begin(), mark_.end(), 0u);
      mark_stamp_ = 1;
    }
    return mark_stamp_;
  }

  MazeRouter maze_;
  std::vector<std::uint32_t> mark_;
  std::uint32_t mark_stamp_ = 0;

  // Single-entry cache of the *bare* build — the tree over exactly the
  // given terminal vector with no surviving Steiner candidates.  The
  // redundant-steiner removal loop of the critic converges here for almost
  // every exploratory selection (a random candidate is rarely a degree-3
  // Steiner point), so without the cache every critic call rebuilds the
  // identical pins-only tree as its final pass.  Keyed on grid identity
  // (address + revision — two live grids only share both when their
  // topology is identical), the result-shaping config knobs, and the exact
  // pin vector (terminal order determines Prim's root and therefore the
  // canonical tree).  `incremental` is deliberately absent from the key:
  // both modes produce bitwise-identical results (DESIGN.md §10).
  bool bare_valid_ = false;
  const HananGrid* bare_grid_ = nullptr;
  std::uint64_t bare_revision_ = 0;
  std::uint8_t bare_attach_ = 0;
  std::uint8_t bare_cost_model_ = 0;
  std::vector<Vertex> bare_pins_;
  RouteTree bare_tree_;
  double bare_cost_ = 0.0;
  bool bare_connected_ = false;

  // Work vectors of OarmstRouter::build/build_once, kept hot between calls.
  std::vector<Vertex> tree_vertices_;
  std::vector<Vertex> connected_terms_;
  std::vector<Vertex> remaining_;
  std::vector<Vertex> path_;
  std::vector<Vertex> new_sources_;
  std::vector<Vertex> terminals_;
  std::vector<Vertex> steiner_;
  std::vector<Vertex> kept_;
  std::vector<Vertex> rebuild_terminals_;
};

/// Per-thread scratch pool: returns this thread's RouterScratch, creating
/// it on first use.  The default scratch for every OarmstRouter call that
/// does not pass one explicitly.
RouterScratch& local_router_scratch();

}  // namespace oar::route
