# Empty compiler generated dependencies file for visualize_route.
# This may be replaced when dependencies are built.
