#include "route/oarmst.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "steiner/router_base.hpp"

namespace oar::route {
namespace {

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m, double via = 1.0) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), via);
}

TEST(Oarmst, TwoPinsStraightLine) {
  HananGrid grid = unit_grid(5, 1, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  OarmstRouter router(grid);
  const auto result = router.build(grid.pins());
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
}

TEST(Oarmst, SteinerPointEnablesSharing) {
  // Three pins in a T: explicit Steiner point at the junction saves length.
  HananGrid grid = unit_grid(3, 3, 1);
  grid.add_pin(grid.index(0, 2, 0));
  grid.add_pin(grid.index(2, 2, 0));
  grid.add_pin(grid.index(1, 0, 0));
  OarmstRouter router(grid);
  const Vertex junction = grid.index(1, 2, 0);
  const auto with_sp = router.build(grid.pins(), {junction});
  EXPECT_TRUE(with_sp.connected);
  EXPECT_DOUBLE_EQ(with_sp.cost, 4.0);  // optimal Steiner tree
  // The junction has degree 3 and is kept as irredundant.
  EXPECT_EQ(with_sp.kept_steiner, std::vector<Vertex>{junction});
  EXPECT_EQ(with_sp.tree.degree(junction), 3);
}

TEST(Oarmst, RedundantSteinerPointRemoved) {
  HananGrid grid = unit_grid(5, 1, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  // A Steiner point on the direct path has degree 2 -> redundant.
  const auto result = OarmstRouter(grid).build(grid.pins(), {grid.index(2, 0, 0)});
  EXPECT_TRUE(result.kept_steiner.empty());
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
}

TEST(Oarmst, RedundantRemovalCanBeDisabled) {
  HananGrid grid = unit_grid(5, 1, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  OarmstConfig cfg;
  cfg.remove_redundant_steiner = false;
  const auto result = OarmstRouter(grid, cfg).build(grid.pins(), {grid.index(2, 0, 0)});
  EXPECT_EQ(result.kept_steiner.size(), 1u);
}

TEST(Oarmst, UselessSteinerPointDoesNotHurtAfterRemoval) {
  HananGrid grid = unit_grid(6, 6, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(5, 5, 0));
  OarmstRouter router(grid);
  const double base = router.build(grid.pins()).cost;
  // An off-path Steiner point is dropped by the redundancy filter.
  const auto result = router.build(grid.pins(), {grid.index(5, 0, 0)});
  EXPECT_DOUBLE_EQ(result.cost, base);
}

TEST(Oarmst, AvoidsObstacles) {
  HananGrid grid = unit_grid(5, 3, 1);
  for (std::int32_t v = 0; v < 3; ++v) grid.block_vertex(grid.index(2, v, 0));
  grid.add_pin(grid.index(0, 1, 0));
  grid.add_pin(grid.index(4, 1, 0));
  const auto result = OarmstRouter(grid).build(grid.pins());
  EXPECT_FALSE(result.connected);  // wall spans the full height on one layer
}

TEST(Oarmst, EscapesThroughSecondLayer) {
  HananGrid grid = unit_grid(5, 3, 2, 1.5);
  for (std::int32_t v = 0; v < 3; ++v) grid.block_vertex(grid.index(2, v, 0));
  grid.add_pin(grid.index(0, 1, 0));
  grid.add_pin(grid.index(4, 1, 0));
  const auto result = OarmstRouter(grid).build(grid.pins());
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 4.0 + 2.0 * 1.5);  // 4 steps + 2 vias
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
}

TEST(Oarmst, DuplicateAndInvalidSteinerInputsFiltered) {
  HananGrid grid = unit_grid(4, 4, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(3, 3, 0));
  grid.block_vertex(grid.index(2, 2, 0));
  OarmstRouter router(grid);
  const auto result = router.build(
      grid.pins(),
      {grid.index(0, 0, 0),        // coincides with a pin
       grid.index(2, 2, 0),        // blocked
       grid.index(1, 1, 0), grid.index(1, 1, 0),  // duplicate
       Vertex(-3), Vertex(9999)});                // out of range
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
}

TEST(Oarmst, TreeAttachmentBeatsTerminalOnlyMst) {
  // Three collinear-ish pins where a T-junction helps.
  HananGrid grid = unit_grid(5, 5, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  grid.add_pin(grid.index(2, 4, 0));

  OarmstConfig tree_cfg;  // defaults: tree attachment, union length
  const double st = OarmstRouter(grid, tree_cfg).build(grid.pins()).cost;
  const double mst = steiner::mst_cost(grid);
  EXPECT_LE(st, mst);
  EXPECT_DOUBLE_EQ(st, 8.0);   // trunk + stub via T-junction
  EXPECT_DOUBLE_EQ(mst, 10.0); // two pairwise paths
}

TEST(Oarmst, SinglePinZeroCost) {
  HananGrid grid = unit_grid(3, 3, 1);
  grid.add_pin(grid.index(1, 1, 0));
  const auto result = OarmstRouter(grid).build(grid.pins());
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

class OarmstPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OarmstPropertyTest, RandomGridsProduceValidTrees) {
  util::Rng rng(GetParam());
  gen::RandomGridSpec spec;
  spec.h = 8;
  spec.v = 8;
  spec.m = 2;
  spec.min_pins = 3;
  spec.max_pins = 6;
  spec.min_obstacles = 4;
  spec.max_obstacles = 10;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 20;
  const HananGrid grid = gen::random_grid(spec, rng);

  OarmstRouter router(grid);
  const auto result = router.build(grid.pins());
  ASSERT_TRUE(result.connected);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");

  // Union-length ST cost never exceeds the terminal-only sum-of-paths MST.
  EXPECT_LE(result.cost, steiner::mst_cost(grid) + 1e-9);

  // Kept Steiner points all have degree >= 3.
  const auto with_sp = router.build(grid.pins(), {grid.index(4, 4, 0)});
  for (Vertex s : with_sp.kept_steiner) {
    EXPECT_GE(with_sp.tree.degree(s), 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OarmstPropertyTest,
                         ::testing::Range(std::uint64_t(100), std::uint64_t(116)));

}  // namespace
}  // namespace oar::route
