file(REMOVE_RECURSE
  "CMakeFiles/oar_mcts.dir/actor_critic.cpp.o"
  "CMakeFiles/oar_mcts.dir/actor_critic.cpp.o.d"
  "CMakeFiles/oar_mcts.dir/comb_mcts.cpp.o"
  "CMakeFiles/oar_mcts.dir/comb_mcts.cpp.o.d"
  "CMakeFiles/oar_mcts.dir/seq_mcts.cpp.o"
  "CMakeFiles/oar_mcts.dir/seq_mcts.cpp.o.d"
  "liboar_mcts.a"
  "liboar_mcts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_mcts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
