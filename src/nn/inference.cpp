#include "nn/inference.hpp"

#include "obs/metrics.hpp"

namespace oar::nn {

namespace {

// Growth is a warm-up-only event, so the registry traffic here is cold by
// construction; the steady-state forward touches no metric at all (the
// zero-allocation contract doubles as the zero-instrumentation contract).
struct ArenaObs {
  obs::Counter& grow_events;
  obs::Gauge& arena_bytes;
};

ArenaObs& arena_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static ArenaObs o{
      reg.counter("oar_nn_arena_grow_events_total",
                  "InferenceScratch capacity growths (new slot or workspace "
                  "outgrowing its storage); constant once warm"),
      reg.gauge("oar_nn_arena_bytes",
                "Total bytes held by all inference arenas' tensor slots and "
                "kernel workspaces"),
  };
  return o;
}

}  // namespace

Tensor& InferenceScratch::next_slot() {
  if (used_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>());
    ++grow_events_;
    arena_obs().grow_events.inc();
  }
  return *slots_[used_++];
}

Tensor& InferenceScratch::push(const std::vector<std::int32_t>& shape) {
  Tensor& t = next_slot();
  const std::size_t cap = t.raw().capacity();
  t.reset_shape(shape);
  if (t.raw().capacity() != cap) {
    ++grow_events_;
    ArenaObs& o = arena_obs();
    o.grow_events.inc();
    o.arena_bytes.add(double(t.raw().capacity() - cap) * double(sizeof(float)));
  }
  return t;
}

Tensor& InferenceScratch::push(std::initializer_list<std::int32_t> shape) {
  Tensor& t = next_slot();
  const std::size_t cap = t.raw().capacity();
  t.reset_shape(shape);
  if (t.raw().capacity() != cap) {
    ++grow_events_;
    ArenaObs& o = arena_obs();
    o.grow_events.inc();
    o.arena_bytes.add(double(t.raw().capacity() - cap) * double(sizeof(float)));
  }
  return t;
}

float* InferenceScratch::ensure(std::vector<float>& v, std::size_t n) {
  if (v.capacity() < n) {
    ++grow_events_;
    const std::size_t old_cap = v.capacity();
    v.resize(n);
    ArenaObs& o = arena_obs();
    o.grow_events.inc();
    o.arena_bytes.add(double(v.capacity() - old_cap) * double(sizeof(float)));
    return v.data();
  }
  if (v.size() < n) v.resize(n);
  return v.data();
}

InferenceScratch& local_inference_scratch() {
  static thread_local InferenceScratch scratch;
  return scratch;
}

}  // namespace oar::nn
