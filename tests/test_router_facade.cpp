// core::Router — the unified facade over the registry baselines, the RL
// router and serve::RouterService.  These tests run the cheap baseline
// engines only; the "rl-ours" path (which quick-trains a selector when no
// checkpoint is present) is covered by the option-validation checks and the
// serving suite.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/router.hpp"
#include "obs/metrics.hpp"
#include "steiner/liu14.hpp"

namespace oar::core {
namespace {

geom::Layout two_layer_layout() {
  geom::Layout layout(100, 100, 2, 3.0);
  layout.add_pin(10, 20, 0);
  layout.add_pin(80, 70, 1);
  layout.add_pin(80, 20, 0);
  layout.add_obstacle(geom::Rect(30, 30, 50, 60), 0);
  return layout;
}

RouterOptions liu14_options() {
  RouterOptions options;
  options.engine = "liu14";
  return options;
}

TEST(RouterFacade, RoutesLayoutWithItsOwnPins) {
  Router router(liu14_options());
  const RouteResult r = router.route(two_layer_layout(), Net{"clk", {}});
  EXPECT_EQ(r.engine, "liu14");
  EXPECT_TRUE(r.connected());
  EXPECT_GT(r.cost(), 0.0);
  ASSERT_NE(r.grid, nullptr);
  EXPECT_EQ(r.grid->pins().size(), 3u);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GE(r.total_seconds, 0.0);
}

TEST(RouterFacade, NetPinsAugmentTheGrid) {
  Router router(liu14_options());
  // First resolve the grid to find a legal extra vertex index.
  const RouteResult base = router.route(two_layer_layout(), Net{"base", {}});
  const hanan::Vertex extra = [&] {
    for (hanan::Vertex v = 0; v < base.grid->num_vertices(); ++v) {
      if (!base.grid->is_pin(v) && !base.grid->is_blocked(v)) return v;
    }
    return hanan::Vertex{0};
  }();
  const RouteResult r =
      router.route(two_layer_layout(), Net{"augmented", {extra}});
  EXPECT_EQ(r.grid->pins().size(), 4u);
  EXPECT_TRUE(r.grid->is_pin(extra));
  EXPECT_TRUE(r.connected());
  EXPECT_GT(r.cost(), 0.0);
}

TEST(RouterFacade, OutOfRangePinThrows) {
  Router router(liu14_options());
  EXPECT_THROW(router.route(two_layer_layout(), Net{"bad", {1 << 20}}),
               std::invalid_argument);
  EXPECT_THROW(router.route(two_layer_layout(), Net{"bad", {-1}}),
               std::invalid_argument);
}

TEST(RouterFacade, MatchesTheUnderlyingEngine) {
  const hanan::HananGrid grid =
      hanan::HananGrid::from_layout(two_layer_layout());
  steiner::Liu14Router direct;
  const route::OarmstResult expected = direct.route(grid);

  Router router(liu14_options());
  const RouteResult r = router.route(grid);
  EXPECT_DOUBLE_EQ(r.cost(), expected.cost);
  EXPECT_EQ(r.connected(), expected.connected);
}

TEST(RouterFacade, AttachesObsSnapshotByDefault) {
  Router router(liu14_options());
  const RouteResult r = router.route(two_layer_layout(), Net{"clk", {}});
  if (obs::kMetricsCompiled) {
    // Routing drives MazeRouter underneath, so the snapshot must carry its
    // epoch counter family.
    bool found = false;
    for (const obs::CounterSample& c : r.obs.counters) {
      if (c.name == "oar_route_maze_epochs_total") found = true;
    }
    EXPECT_TRUE(found);
  } else {
    EXPECT_TRUE(r.obs.counters.empty());
  }
}

TEST(RouterFacade, CollectObsOffYieldsEmptySnapshot) {
  RouterOptions options = liu14_options();
  options.collect_obs = false;
  Router router(options);
  const RouteResult r = router.route(two_layer_layout(), Net{"clk", {}});
  EXPECT_TRUE(r.obs.counters.empty());
  EXPECT_TRUE(r.obs.gauges.empty());
  EXPECT_TRUE(r.obs.histograms.empty());
}

TEST(RouterFacade, ServiceIsLazy) {
  Router router(liu14_options());
  EXPECT_EQ(router.service(), nullptr);
  router.route(two_layer_layout(), Net{"clk", {}});
  EXPECT_EQ(router.service(), nullptr);  // direct path never builds one
}

TEST(RouterFacade, FreeFunctionRoutesInOneCall) {
  const RouteResult r =
      route(two_layer_layout(), Net{"clk", {}}, liu14_options());
  EXPECT_EQ(r.engine, "liu14");
  EXPECT_TRUE(r.connected());
}

TEST(RouterFacade, EveryRegisteredBaselineRoutesThroughTheFacade) {
  for (const std::string& name : {"lin08", "liu14", "lin18"}) {
    RouterOptions options;
    options.engine = name;
    Router router(options);
    const RouteResult r = router.route(two_layer_layout(), Net{name, {}});
    EXPECT_EQ(r.engine, name) << name;
    EXPECT_TRUE(r.connected()) << name;
  }
}

}  // namespace
}  // namespace oar::core
