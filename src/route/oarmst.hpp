#pragma once

// Obstacle-avoiding rectilinear minimum spanning tree (OARMST) router,
// following the maze-router-based Prim's construction of Lin'18 [14] as
// used by the paper (Sec. 3.1):
//
//   1. grow a tree with Prim's algorithm where the "distance" to the next
//      terminal is a multi-source maze (Dijkstra) search from the current
//      tree,
//   2. remove redundant Steiner points (selected Steiner terminals with
//      tree degree < 3),
//   3. rebuild the spanning tree over pins + irredundant Steiner points.
//
// Two attachment modes:
//   * kTreeVertices (default, the real router): the maze search starts from
//     every vertex of the current tree, so a new path may branch off the
//     middle of an existing wire (T-junction).
//   * kTerminalsOnly: paths may only start at terminals.  Combined with
//     CostModel::kSumOfPaths this yields the plain "minimum spanning tree
//     without using any Steiner point" that the paper's ST-to-MST ratio
//     (Figs. 11-12) divides by.
//
// The Prim loop is incremental by default: after attaching a path, the
// newly added tree vertices are inserted as zero-distance sources into the
// *live* Dijkstra frontier and the search continues, instead of re-flooding
// the grid from scratch each iteration (DESIGN.md §10).  Set
// OarmstConfig::incremental = false to force the from-scratch reference
// construction; both produce bitwise-identical trees and costs.

#include <string>
#include <vector>

#include "route/maze.hpp"
#include "route/route_tree.hpp"
#include "route/scratch.hpp"

namespace oar::route {

enum class AttachMode { kTreeVertices, kTerminalsOnly };
enum class CostModel { kUnionLength, kSumOfPaths };

struct OarmstConfig {
  AttachMode attach = AttachMode::kTreeVertices;
  CostModel cost_model = CostModel::kUnionLength;
  /// Drop Steiner terminals with degree < 3 and rebuild (paper Sec. 3.1).
  bool remove_redundant_steiner = true;
  /// Safety bound on removal/rebuild rounds.
  int max_rebuild_passes = 8;
  /// Reuse the Dijkstra frontier across Prim iterations (fast path).  The
  /// from-scratch mode exists as an equivalence baseline for tests and
  /// benchmarks; results are identical either way.
  bool incremental = true;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

struct OarmstResult {
  RouteTree tree;
  /// Routing cost per the configured CostModel.  +infinity when
  /// `connected` is false: a partial tree must never be able to outrank a
  /// complete one in any cost comparison (the MCTS critic minimizes this
  /// value directly).  The partial tree itself is still returned for
  /// diagnostics.
  double cost = 0.0;
  std::vector<Vertex> kept_steiner;   // irredundant Steiner points
  int rebuild_passes = 0;
  bool connected = false;             // false if some terminal is unreachable
};

class OarmstRouter {
 public:
  explicit OarmstRouter(const HananGrid& grid, OarmstConfig config = {});

  /// Builds the spanning tree over `pins` plus `steiner_points`.  Steiner
  /// points that coincide with pins or blocked vertices are ignored.
  /// `scratch` supplies the pooled maze router and work buffers; pass
  /// nullptr to use this thread's local_router_scratch().  The router
  /// itself is stateless, so concurrent builds are safe as long as each
  /// uses a distinct scratch.
  OarmstResult build(const std::vector<Vertex>& pins,
                     const std::vector<Vertex>& steiner_points = {},
                     RouterScratch* scratch = nullptr) const;

  /// Routing cost only (convenience for the MCTS critic and benchmarks);
  /// +infinity when the terminal set cannot be fully connected.
  double cost(const std::vector<Vertex>& pins,
              const std::vector<Vertex>& steiner_points = {},
              RouterScratch* scratch = nullptr) const;

  const HananGrid& grid() const { return grid_; }
  const OarmstConfig& config() const { return config_; }

 private:
  /// One spanning-tree construction over the given terminal set.
  OarmstResult build_once(const std::vector<Vertex>& terminals,
                          RouterScratch& scratch) const;

  /// Build over exactly `pins` (no Steiner terminals), served from the
  /// scratch's single-entry bare cache when the grid topology, config and
  /// pin vector match.  `kept_steiner`/`rebuild_passes` of the returned
  /// result are left at their defaults; callers set them.
  OarmstResult bare_result(const std::vector<Vertex>& pins,
                           RouterScratch& scratch) const;

  const HananGrid& grid_;
  OarmstConfig config_;
};

}  // namespace oar::route
