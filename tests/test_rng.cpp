#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace oar::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

class RngUniformIntTest : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RngUniformIntTest, StaysInRange) {
  const auto [lo, hi] = GetParam();
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(lo, hi);
    EXPECT_GE(x, lo);
    EXPECT_LE(x, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformIntTest,
                         ::testing::Values(std::pair{0ll, 0ll}, std::pair{0ll, 1ll},
                                           std::pair{-5ll, 5ll}, std::pair{1ll, 1000ll},
                                           std::pair{-1000000ll, 1000000ll}));

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(7);
  std::array<int, 6> counts{};
  for (int i = 0; i < 6000; ++i) counts[std::size_t(rng.uniform_int(0, 5))]++;
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 expected each
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == child.next();
  EXPECT_LT(equal, 4);
}

TEST(Splitmix, KnownNonZeroAndDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_NE(s1, 99u);
}

}  // namespace
}  // namespace oar::util
