#include "mcts/seq_mcts.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "util/timer.hpp"

namespace oar::mcts {

namespace {

struct Edge {
  Vertex action = hanan::kInvalidVertex;
  double prior = 0.0;
  std::int64_t visits = 0;
  double total_value = 0.0;
  std::int32_t child = -1;

  double q() const { return visits == 0 ? 0.0 : total_value / double(visits); }
};

struct Node {
  std::int32_t parent = -1;
  Vertex action = hanan::kInvalidVertex;
  std::int32_t level = 0;
  std::int32_t flat_run = 0;
  double cost = -1.0;
  bool expanded = false;
  bool terminal = false;
  std::vector<Edge> edges;
};

/// Unordered policy: fsp normalized over all valid vertices.
std::vector<std::pair<Vertex, double>> unordered_policy(
    const HananGrid& grid, const std::vector<Vertex>& selected,
    const std::vector<double>& fsp_map) {
  std::unordered_set<Vertex> taken(selected.begin(), selected.end());
  std::vector<std::pair<Vertex, double>> out;
  double total = 0.0;
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (grid.is_blocked(v) || grid.is_pin(v) || taken.count(v)) continue;
    const double f = fsp_map[std::size_t(grid.priority_of(v))];
    out.emplace_back(v, f);
    total += f;
  }
  if (total > 0.0) {
    for (auto& [v, p] : out) p /= total;
  } else if (!out.empty()) {
    const double uniform = 1.0 / double(out.size());
    for (auto& [v, p] : out) p = uniform;
  }
  return out;
}

}  // namespace

SeqMcts::SeqMcts(rl::SteinerSelector& selector, CombMctsConfig config)
    : selector_(selector), config_(config) {}

SeqMctsResult SeqMcts::run(const HananGrid& grid) {
  util::Timer timer;
  SeqMctsResult result;
  const auto n_vertices = std::size_t(grid.num_vertices());

  ActorCritic ac(selector_, grid);
  const std::int32_t budget =
      std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);

  std::vector<Node> nodes;
  nodes.reserve(1024);
  nodes.emplace_back();
  nodes[0].cost = ac.exact_cost({});
  result.initial_cost = nodes[0].cost;
  result.final_cost = nodes[0].cost;
  result.best_cost = nodes[0].cost;
  const double rc0 = std::max(nodes[0].cost, 1e-12);

  auto state_of = [&](std::int32_t node) {
    std::vector<Vertex> selected;
    for (std::int32_t cur = node; cur != 0; cur = nodes[std::size_t(cur)].parent) {
      selected.push_back(nodes[std::size_t(cur)].action);
    }
    std::reverse(selected.begin(), selected.end());
    return selected;
  };

  auto mark_terminal_rules = [&](Node& node, const Node& parent) {
    if (node.level >= budget) node.terminal = true;
    if (config_.stop_on_cost_increase &&
        node.cost > parent.cost * (1.0 + config_.flat_eps)) {
      node.terminal = true;
    }
    if (std::abs(node.cost - parent.cost) <= parent.cost * config_.flat_eps) {
      node.flat_run = parent.flat_run + 1;
      if (node.flat_run >= config_.flat_cost_patience) node.terminal = true;
    } else {
      node.flat_run = 0;
    }
  };

  if (budget == 0) nodes[0].terminal = true;

  // fsp buffer reused across every expansion (allocation-free with the
  // selector in inference mode).
  std::vector<double> fsp(n_vertices);

  std::int32_t root = 0;
  while (!nodes[std::size_t(root)].terminal) {
    for (std::int32_t iter = 0; iter < config_.iterations_per_move; ++iter) {
      ++result.stats.iterations;
      std::int32_t cur = root;
      struct Step {
        std::int32_t node;
        std::size_t edge;
      };
      std::vector<Step> path;
      while (nodes[std::size_t(cur)].expanded && !nodes[std::size_t(cur)].terminal) {
        Node& node = nodes[std::size_t(cur)];
        std::int64_t total_visits = 0;
        for (const Edge& e : node.edges) total_visits += e.visits;
        const double sqrt_total = std::sqrt(double(total_visits));
        std::size_t best = 0;
        double best_score = -1e300;
        for (std::size_t i = 0; i < node.edges.size(); ++i) {
          const Edge& e = node.edges[i];
          double score =
              e.q() + config_.c_puct * e.prior * sqrt_total / (1.0 + double(e.visits));
          if (total_visits == 0) score = e.prior;
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
        path.push_back({cur, best});
        Edge& edge = node.edges[best];
        if (edge.child < 0) {
          Node child;
          child.parent = cur;
          child.action = edge.action;
          child.level = node.level + 1;
          edge.child = std::int32_t(nodes.size());
          nodes.push_back(child);
          ++result.stats.nodes;
        }
        cur = nodes[std::size_t(path.back().node)].edges[path.back().edge].child;
      }

      Node& leaf = nodes[std::size_t(cur)];
      const std::vector<Vertex> selected = state_of(cur);
      if (leaf.cost < 0.0) {
        leaf.cost = ac.exact_cost(selected);
        mark_terminal_rules(leaf, nodes[std::size_t(leaf.parent)]);
        result.best_cost = std::min(result.best_cost, leaf.cost);
      }

      double value;
      if (leaf.terminal) {
        value = (rc0 - leaf.cost) / rc0;
      } else if (!leaf.expanded) {
        ac.fsp_into(selected, fsp);
        auto policy = unordered_policy(grid, selected, fsp);
        if (config_.max_children > 0 && std::ssize(policy) > config_.max_children) {
          std::partial_sort(
              policy.begin(), policy.begin() + config_.max_children, policy.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
          policy.resize(std::size_t(config_.max_children));
          double total = 0.0;
          for (const auto& [v, p] : policy) total += p;
          if (total > 0.0) {
            for (auto& [v, p] : policy) p /= total;
          }
        }
        if (policy.empty()) {
          leaf.terminal = true;
          value = (rc0 - leaf.cost) / rc0;
        } else {
          const double mix = config_.prior_uniform_mix;
          const double uniform = 1.0 / double(policy.size());
          leaf.edges.reserve(policy.size());
          for (const auto& [v, p] : policy) {
            Edge e;
            e.action = v;
            e.prior = (1.0 - mix) * p + mix * uniform;
            leaf.edges.push_back(e);
          }
          leaf.expanded = true;
          ++result.stats.expansions;
          ++result.stats.simulations;
          const double predicted = config_.use_critic
                                       ? ac.critic_cost(selected, budget, fsp)
                                       : leaf.cost;
          value = (rc0 - predicted) / rc0;
        }
      } else {
        value = (rc0 - leaf.cost) / rc0;
      }

      for (const Step& step : path) {
        Edge& e = nodes[std::size_t(step.node)].edges[step.edge];
        e.visits += 1;
        e.total_value += value;
      }
    }

    Node& root_node = nodes[std::size_t(root)];
    if (!root_node.expanded || root_node.edges.empty()) break;

    // Per-move training sample: root visit distribution (conventional
    // MCTS labeling — one sample per executed node).
    SeqSample sample;
    sample.state_selected = state_of(root);
    sample.label.assign(n_vertices, 0.0f);
    sample.label_mask.assign(n_vertices, 0.0f);
    std::int64_t total_visits = 0;
    for (const Edge& e : root_node.edges) total_visits += e.visits;
    for (Vertex v = 0; v < grid.num_vertices(); ++v) {
      if (!grid.is_blocked(v) && !grid.is_pin(v)) {
        sample.label_mask[std::size_t(grid.priority_of(v))] = 1.0f;
      }
    }
    for (const Vertex v : sample.state_selected) {
      sample.label_mask[std::size_t(grid.priority_of(v))] = 0.0f;
    }
    if (total_visits > 0) {
      for (const Edge& e : root_node.edges) {
        sample.label[std::size_t(grid.priority_of(e.action))] =
            float(double(e.visits) / double(total_visits));
      }
    }
    result.samples.push_back(std::move(sample));

    std::size_t best = 0;
    for (std::size_t i = 1; i < root_node.edges.size(); ++i) {
      if (root_node.edges[i].visits > root_node.edges[best].visits) best = i;
    }
    Edge& chosen = root_node.edges[best];
    if (chosen.child < 0) break;
    root = chosen.child;
    ++result.stats.executed_moves;
    Node& new_root = nodes[std::size_t(root)];
    if (new_root.cost < 0.0) {
      new_root.cost = ac.exact_cost(state_of(root));
      mark_terminal_rules(new_root, nodes[std::size_t(new_root.parent)]);
    }
    result.best_cost = std::min(result.best_cost, new_root.cost);
  }

  result.selected = state_of(root);
  result.final_cost = nodes[std::size_t(root)].cost;
  result.stats.seconds = timer.seconds();
  return result;
}

SeqInferenceResult sequential_select(rl::SteinerSelector& selector,
                                     const HananGrid& grid, double stop_threshold) {
  SeqInferenceResult result;
  const std::int32_t budget =
      std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);
  for (std::int32_t i = 0; i < budget; ++i) {
    const std::vector<double> fsp = selector.infer_fsp(grid, result.selected);
    ++result.inferences;
    const std::vector<Vertex> best =
        rl::SteinerSelector::top_k_valid(grid, fsp, 1, result.selected);
    if (best.empty()) break;
    const double p = fsp[std::size_t(grid.priority_of(best.front()))];
    if (p < stop_threshold) break;
    result.selected.push_back(best.front());
  }
  return result;
}

}  // namespace oar::mcts
