#include "obs/trace.hpp"

#ifndef OARSMTRL_NO_METRICS

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace oar::obs {

TraceRing& TraceRing::instance() {
  static TraceRing* ring = new TraceRing();  // never destroyed
  return *ring;
}

void TraceRing::set_capacity(std::size_t capacity) {
  slots_.assign(capacity, TraceEvent{});
  next_.store(0, std::memory_order_relaxed);
}

void TraceRing::record(const char* name, std::int64_t start_ns, std::int64_t dur_ns) {
  if (slots_.empty()) return;
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& slot = slots_[std::size_t(ticket % slots_.size())];
  slot.name = name;
  slot.tid = std::uint32_t(detail::shard_index());
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  if (slots_.empty()) return out;
  const std::uint64_t total = next_.load(std::memory_order_relaxed);
  const std::uint64_t n = std::min<std::uint64_t>(total, slots_.size());
  out.reserve(std::size_t(n));
  // Oldest retained record first.  Unfilled slots (name == nullptr) are
  // skipped defensively in case a racing writer claimed a ticket but has
  // not finished writing its slot yet.
  const std::uint64_t first = total - n;
  for (std::uint64_t i = first; i < total; ++i) {
    const TraceEvent& e = slots_[std::size_t(i % slots_.size())];
    if (e.name != nullptr) out.push_back(e);
  }
  return out;
}

std::string TraceRing::dump_chrome_json() const {
  const std::vector<TraceEvent> evs = events();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    // chrome://tracing wants microseconds ("ts"/"dur"); "ph":"X" is a
    // complete (begin+end) event.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%" PRIu32
                  ",\"ts\":%.3f,\"dur\":%.3f}",
                  i == 0 ? "" : ",", e.name, e.tid, double(e.start_ns) * 1e-3,
                  double(e.dur_ns) * 1e-3);
    out += buf;
  }
  out += "]}\n";
  return out;
}

std::int64_t TraceRing::now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch)
      .count();
}

}  // namespace oar::obs

#endif  // !OARSMTRL_NO_METRICS
