#pragma once

// Lin'08-class baseline [12]: the earliest multilayer OARSMT construction.
// Our stand-in builds the spanning tree by maze-based Prim growth where new
// paths may attach anywhere on the existing tree (implicit T-junction
// Steiner points), with no explicit Steiner-point search or refinement —
// the weakest of the three algorithmic baselines, as in the paper's
// Table 4 ordering.

#include "steiner/router_base.hpp"

namespace oar::steiner {

class Lin08Router : public Router {
 public:
  std::string name() const override { return "lin08"; }
  route::OarmstResult route(const HananGrid& grid) override;
};

}  // namespace oar::steiner
