#pragma once

// Canonical layout hashing for the experience store (and, through it, the
// serving result cache).
//
// Two routing requests should share one experience entry whenever their
// layouts are equal *up to the paper's 16 augmentation symmetries* (4 H-V
// rotations x V reflection x layer reflection, rl/augment.hpp): the OARSMT
// problem is equivariant under those transforms, so the optimal tree of one
// variant is the transformed tree of another.  The canonical key is the
// lexicographically smallest byte serialization over the orbit of the 16
// transformed grids; because the specs form a group, every member of an
// orbit reduces to the same key.
//
// Grids with blocked *edges* (as opposed to blocked vertices) fall back to
// an identity-only key: transform_grid does not carry edge blocks, so their
// orbit cannot be enumerated faithfully.  Exact repeats still hit.  Grids
// carrying a congestion cost overlay (HananGrid::has_edge_cost_bias, the
// full-chip negotiation's per-edge bias) fall back the same way and for the
// same reason; their key includes the bias bytes so two overlay states
// never alias.

#include <string>
#include <vector>

#include "hanan/hanan_grid.hpp"
#include "rl/augment.hpp"

namespace oar::experience {

using hanan::HananGrid;
using hanan::Vertex;

struct CanonicalForm {
  /// Store key: serialized bytes of the canonical (transformed) grid.
  std::string key;
  /// Transform mapping the request grid onto the canonical grid.
  rl::AugmentSpec spec;
  /// False when edge blocks forced the identity-only fallback.
  bool symmetric = true;
};

/// Byte serialization of a grid: dims, step costs, via cost, blocked map,
/// pin mask, edge-block map, and — only when present — the edge cost-bias
/// overlay.  Equal strings <=> routing-equivalent grids.
std::string serialize_grid(const HananGrid& grid);

/// True when some usable-looking edge is explicitly blocked (the geometric
/// construction's obstacle-interior case).
bool has_edge_blocks(const HananGrid& grid);

/// Canonical form of `grid` (see file comment).
CanonicalForm canonicalize(const HananGrid& grid);

/// Permutation taking canonical-grid vertices back to request-grid
/// vertices: inverse_map[transform_vertex(grid, v, form.spec)] == v.
std::vector<Vertex> inverse_vertex_map(const HananGrid& grid,
                                       const rl::AugmentSpec& spec);

}  // namespace oar::experience
