#pragma once

// Bundled pretrained selector: benches and examples load the tiny
// checkpoint under <repo>/models/pretrained.bin (trained by
// examples/train_selector) when present, so table benches do not need to
// retrain.  Falls back to a freshly initialized selector plus an optional
// quick training burst.

#include <memory>
#include <optional>
#include <string>

#include "rl/selector.hpp"

namespace oar::core {

/// The network configuration the bundled checkpoint was trained with.
rl::SelectorConfig pretrained_selector_config();

/// Default checkpoint location: $OARSMTRL_MODEL if set, otherwise
/// <source-root>/models/pretrained.bin (source root baked in at compile
/// time via OARSMTRL_SOURCE_DIR).
std::string default_checkpoint_path();

/// Loads the bundled checkpoint.  Returns nullptr when the file is missing
/// or incompatible.
std::shared_ptr<rl::SteinerSelector> load_pretrained(
    const std::string& path = default_checkpoint_path());

/// Loads the bundled checkpoint, or — when absent — trains a selector for
/// `fallback_stages` quick stages so callers always get a usable agent.
/// `quiet` suppresses the per-stage log lines.
std::shared_ptr<rl::SteinerSelector> load_or_train_pretrained(
    int fallback_stages = 2, const std::string& path = default_checkpoint_path());

}  // namespace oar::core
