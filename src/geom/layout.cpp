#include "geom/layout.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace oar::geom {

double Layout::obstacle_ratio() const {
  if (width_ <= 0 || height_ <= 0 || num_layers_ <= 0) return 0.0;
  // Sweep per layer: decompose the union of obstacle rects into x-slabs.
  double covered = 0.0;
  for (std::int32_t layer = 0; layer < num_layers_; ++layer) {
    std::vector<const Rect*> rects;
    for (const auto& o : obstacles_) {
      if (o.layer == layer && o.rect.area() > 0) rects.push_back(&o.rect);
    }
    if (rects.empty()) continue;
    std::vector<std::int32_t> xs;
    for (const Rect* r : rects) {
      xs.push_back(r->lo.x);
      xs.push_back(r->hi.x);
    }
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
      const std::int32_t x0 = xs[i], x1 = xs[i + 1];
      // Union of y-intervals of rects overlapping this slab.
      std::vector<std::pair<std::int32_t, std::int32_t>> ys;
      for (const Rect* r : rects) {
        if (r->lo.x <= x0 && r->hi.x >= x1) ys.emplace_back(r->lo.y, r->hi.y);
      }
      std::sort(ys.begin(), ys.end());
      std::int64_t len = 0;
      std::int32_t cur_lo = 0, cur_hi = 0;
      bool open = false;
      for (const auto& [lo, hi] : ys) {
        if (!open) {
          cur_lo = lo;
          cur_hi = hi;
          open = true;
        } else if (lo <= cur_hi) {
          cur_hi = std::max(cur_hi, hi);
        } else {
          len += cur_hi - cur_lo;
          cur_lo = lo;
          cur_hi = hi;
        }
      }
      if (open) len += cur_hi - cur_lo;
      covered += double(x1 - x0) * double(len);
    }
  }
  const double total = double(width_) * double(height_) * double(num_layers_);
  return covered / total;
}

bool Layout::has_buried_pin() const {
  for (const auto& pin : pins_) {
    for (const auto& o : obstacles_) {
      if (o.layer == pin.layer && o.rect.strictly_contains(Point2{pin.x, pin.y})) {
        return true;
      }
    }
  }
  return false;
}

std::string Layout::validate() const {
  std::ostringstream problems;
  if (width_ <= 0 || height_ <= 0) problems << "non-positive layout dimensions; ";
  if (num_layers_ <= 0) problems << "non-positive layer count; ";
  if (via_cost_ < 0.0) problems << "negative via cost; ";
  if (pins_.size() < 2) problems << "fewer than 2 pins; ";
  for (const auto& pin : pins_) {
    if (pin.x < 0 || pin.x > width_ || pin.y < 0 || pin.y > height_) {
      problems << "pin " << pin.x << "," << pin.y << " out of bounds; ";
    }
    if (pin.layer < 0 || pin.layer >= num_layers_) {
      problems << "pin layer " << pin.layer << " out of range; ";
    }
  }
  for (const auto& o : obstacles_) {
    if (o.layer < 0 || o.layer >= num_layers_) {
      problems << "obstacle layer " << o.layer << " out of range; ";
    }
    if (o.rect.lo.x < 0 || o.rect.hi.x > width_ || o.rect.lo.y < 0 ||
        o.rect.hi.y > height_) {
      problems << "obstacle out of bounds; ";
    }
  }
  if (has_buried_pin()) problems << "pin strictly inside an obstacle; ";
  return problems.str();
}

}  // namespace oar::geom
