#include "nn/optim.hpp"

#include <cmath>

namespace oar::nn {

double Optimizer::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  for (Parameter* p : params_) {
    const double n = p->grad.norm();
    sq += n * n;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = float(max_norm / norm);
    for (Parameter* p : params_) p->grad *= scale;
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& vel = velocity_[i];
    for (std::int64_t j = 0; j < p->value.numel(); ++j) {
      float g = p->grad[j];
      if (weight_decay_ != 0.0) g += float(weight_decay_) * p->value[j];
      vel[j] = float(momentum_) * vel[j] + g;
      p->value[j] -= float(lr_) * vel[j];
    }
    p->grad.zero();
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps), weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, double(t_));
  const double bc2 = 1.0 - std::pow(beta2_, double(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < p->value.numel(); ++j) {
      float g = p->grad[j];
      if (weight_decay_ != 0.0) g += float(weight_decay_) * p->value[j];
      m[j] = float(beta1_) * m[j] + float(1.0 - beta1_) * g;
      v[j] = float(beta2_) * v[j] + float(1.0 - beta2_) * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p->value[j] -= float(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
    p->grad.zero();
  }
}

}  // namespace oar::nn
