#pragma once

// Append-only, checksummed, mmap-able experience file — the disk tier of
// experience::Store.
//
// File layout (all integers little-endian):
//
//   header  := "OAREXP1\n" | u32 version | u32 reserved(0)
//   frame   := u32 frame_magic ("EXPR") | u64 payload_len
//            | payload | u64 fnv1a64(payload)
//   payload := u32 key_len | key bytes | record bytes (record.hpp)
//
// Crash-safety contract (the OARCK1 discipline applied to a log):
//
//  * Appends go through a single buffered writer; flush() writes whole
//    frames and fdatasyncs, so a kill can only ever tear the *last* frame.
//  * open() scans frames left to right and stops at the first one whose
//    magic, length, checksum, or record parse fails; everything before the
//    tear is recovered, the torn tail is ignored and reported
//    (tail_lost_bytes) — fail-closed per record, never a crash, never a
//    partially-applied record.
//  * compact() rewrites live records to `path.tmp`, fsyncs, and renames
//    over the original — the same atomic-replace move the checkpoint
//    writer uses — then remaps.  Duplicate keys (append-merge updates)
//    are dropped in favor of the newest frame.
//
// Concurrency: any number of readers concurrent with one logical writer,
// guarded by an internal shared_mutex.  Readers resolve against the mmap'd
// region plus an in-memory overlay of post-open appends, so get() never
// touches the filesystem.

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "experience/key.hpp"
#include "experience/record.hpp"

namespace oar::experience {

struct FileStoreStats {
  std::uint64_t records = 0;          ///< live (indexed) records
  std::uint64_t recovered = 0;        ///< records recovered at open
  std::uint64_t appended = 0;         ///< records appended since open
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t tail_lost_bytes = 0;  ///< torn/corrupt bytes dropped at open
  std::uint64_t dead_bytes = 0;       ///< superseded duplicate frames
  std::uint64_t file_bytes = 0;       ///< current on-disk size
  std::uint64_t pending_bytes = 0;    ///< buffered, not yet flushed
};

class FileStore {
 public:
  /// Opens (creating when absent, unless read_only) and indexes `path`.
  /// Throws std::runtime_error when the header is not an OAREXP1 file of a
  /// readable version — a wrong-format file is never silently clobbered —
  /// or when the file cannot be opened/created at all.  A torn *tail* is
  /// not an error (see file comment).
  explicit FileStore(std::string path, bool read_only = false);
  ~FileStore();

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  /// Exact lookup.  Deserializes on demand; false on miss.
  bool get(const CanonicalKey& key, ExperienceRecord& out) const;

  /// All live records whose warm-start base key equals `base_key`, up to
  /// `limit` (newest first).
  std::vector<ExperienceRecord> match_base(std::string_view base_key,
                                           std::size_t limit) const;

  /// Buffers an append (or append-merge update) of `rec` under `key`.
  /// Visible to get()/match_base() immediately; durable after flush().
  void put(const CanonicalKey& key, const ExperienceRecord& rec);

  /// Writes buffered frames to disk and fdatasyncs.  No-op when clean.
  void flush();

  /// Rewrites live records via tmp+rename, dropping dead frames, then
  /// remaps.  Implies flush().
  void compact();

  std::size_t size() const;
  bool read_only() const { return read_only_; }
  const std::string& path() const { return path_; }
  FileStoreStats stats() const;

 private:
  struct Loc {
    std::uint64_t offset = 0;  ///< payload offset in the logical byte space
    std::uint64_t len = 0;     ///< payload length
  };

  /// Resolves a logical offset to memory: [0, mapped_len_) lives in the
  /// mmap, [mapped_len_, ...) in the append overlay.
  const char* at(std::uint64_t offset) const;
  bool parse_at(const Loc& loc, CanonicalKey* key, ExperienceRecord* rec) const;
  void index_payload(const Loc& loc);
  /// Indexes frames in [begin, end); returns the offset one past the last
  /// valid frame (== end when the region is clean).
  std::uint64_t scan_region(const char* data, std::uint64_t begin,
                            std::uint64_t end);
  void open_and_map();
  void unmap();
  void append_frames_locked(const std::string& bytes);

  const std::string path_;
  const bool read_only_;

  mutable std::shared_mutex mu_;
  int fd_ = -1;                   // append fd (writable stores only)
  const char* map_ = nullptr;     // mmap of the file as of open()
  std::uint64_t map_len_ = 0;     // bytes mmap'd (includes header)
  std::uint64_t mapped_len_ = 0;  // == map_len_; logical offsets below this
                                  // resolve into the map
  std::string overlay_;           // frames appended after open
  std::uint64_t flushed_overlay_ = 0;  // prefix of overlay_ already on disk

  std::unordered_map<CanonicalKey, Loc, KeyHash> index_;
  /// base-key digest -> payload locations, newest last.  Digest collisions
  /// are resolved by re-checking the parsed record's base_key.
  std::unordered_map<std::uint64_t, std::vector<Loc>> base_index_;

  FileStoreStats stats_{};
};

}  // namespace oar::experience
